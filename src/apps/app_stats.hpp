#pragma once
/// \file app_stats.hpp
/// Cost accounting for applications that embed the distributed kernels
/// (paper Section VI-E / Figure 9). Kernel-phase costs are measured
/// exactly by the runtime; the work *outside* FusedMM — batched CG dot
/// products, softmax row statistics, and layout restoration — is charged
/// with layout-derived formulas documented per function. This mirrors the
/// paper's observation that sparse-shifting / sparse-replicating layouts
/// pay extra application-side communication because their dense rows are
/// split along r and their outputs land shifted relative to inputs.

#include "common/types.hpp"
#include "runtime/stats.hpp"

namespace dsk {

/// Words per rank for one batched per-row dot-product reduction (the CG
/// scalar products, or a softmax row-statistic combine). Layouts that
/// co-locate full rows (1.5D dense shifting) pay nothing; layouts that
/// split rows along r pay an all-reduce of their row partials across the
/// split group:
///   1.5D sparse shift: group = p/c slices, m/c rows per rank,
///     2 (L-1)/L * m/c words;
///   2.5D dense repl:   group = q slices, m/(qc) rows per rank;
///   2.5D sparse repl:  group = q*c slices, m/q rows per rank.
double rowdot_reduction_words(AlgorithmKind kind, int p, int c, double m);

/// Words per rank to restore a FusedMM output to the input distribution.
/// 1.5D algorithms produce outputs in place; 2.5D outputs land shifted
/// (sparse replicating) or transposed (dense replicating) by one ring
/// position (Section VI-E), costing one block of m*r/p words per rank.
double redistribution_words(AlgorithmKind kind, double m, double r, int p);

/// Accumulated application run costs: kernel phases measured by the
/// runtime plus analytically charged application-side work.
struct AppCosts {
  // Measured inside the distributed kernels (summed max-over-ranks per
  // call, BSP style).
  double fused_replication_seconds = 0;
  double fused_propagation_seconds = 0;
  double fused_computation_seconds = 0;
  std::uint64_t fused_replication_words = 0;
  std::uint64_t fused_propagation_words = 0;

  // Charged outside the kernels.
  double app_comm_seconds = 0;
  double app_comp_seconds = 0;
  double app_comm_words = 0;
  std::uint64_t app_flops = 0;

  double total_seconds() const {
    return fused_replication_seconds + fused_propagation_seconds +
           fused_computation_seconds + app_comm_seconds + app_comp_seconds;
  }

  /// Fold one kernel invocation's stats in.
  void add_kernel(const WorldStats& stats, const MachineModel& machine);

  /// Charge application-side communication (words per rank) and
  /// computation (FLOPs per rank).
  void add_app_comm(double words, const MachineModel& machine);
  void add_app_flops(std::uint64_t flops, int p,
                     const MachineModel& machine);
};

} // namespace dsk
