#pragma once
/// \file als.hpp
/// Collaborative filtering by alternating least squares with a batched
/// conjugate-gradient solver (paper Section VI-E, after Zhao & Canny
/// [1]). We factor sparse observations C~ (with indicator mask S) as
/// A B^T by minimizing
///   || C~ - SDDMM(A, B, S) ||_F^2 + lambda (||A||^2 + ||B||^2).
///
/// Each ALS half-step solves, for every row x of the active factor, the
/// normal equations (M_x + lambda I) x = b_x. The CG matvec for ALL rows
/// at once is exactly a FusedMM:
///   batched M . X = FusedMMA(S, X, B) + lambda X     (A update)
///   batched M . Y = FusedMMB(S, A, Y) + lambda Y     (B update)
/// and the right-hand sides are SpMMA(C~, B) / SpMMB(C~, A), so the whole
/// inner loop runs on the distributed kernels.
///
/// The CG scalar work (batched per-row dot products, axpys) is computed
/// on the factor matrices and charged per AppCosts: layouts that split
/// rows along r (1.5D sparse shifting, 2.5D) additionally pay the
/// row-partial dot reductions and output redistribution the paper
/// discusses for Figure 9.

#include "apps/app_stats.hpp"
#include "dist/algorithm.hpp"
#include "sparse/coo.hpp"

namespace dsk {

struct AlsConfig {
  Index rank = 16;        ///< embedding width r
  Scalar lambda = 0.1;    ///< Tikhonov regularization
  int cg_iterations = 10; ///< CG steps per half-sweep (paper: 10 + 10)
  int sweeps = 1;         ///< full A+B alternations
  std::uint64_t seed = 0x5EED;

  AlgorithmKind kind = AlgorithmKind::DenseShift15D;
  int p = 4;
  int c = 1;
  /// Eliding strategy for the FusedMM matvecs; must be supported by kind.
  Elision elision = Elision::ReplicationReuse;
  MachineModel machine = MachineModel::cori_knl();
};

struct AlsResult {
  DenseMatrix a;
  DenseMatrix b;
  /// Regularized squared loss after each sweep (index 0 = initial loss).
  std::vector<Scalar> loss_history;
  AppCosts costs;
};

/// Run ALS on the observations (an m x n sparse matrix of ratings).
/// Throws if the dimensions do not divide the algorithm's grid.
AlsResult run_als(const CooMatrix& observed, const AlsConfig& config);

/// The regularized objective at (a, b) — exposed for tests.
Scalar als_loss(const CooMatrix& observed, const DenseMatrix& a,
                const DenseMatrix& b, Scalar lambda);

} // namespace dsk
