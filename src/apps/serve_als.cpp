#include "apps/serve_als.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dist/problem.hpp"

namespace dsk {

namespace {

Index round_up(Index value, Index multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

} // namespace

AlsServer::AlsServer(const CooMatrix& ratings, const AlsServerConfig& config)
    : config_(config),
      exec_(config.exec),
      ratings_(ratings),
      reshard_rng_(config.reshard_seed) {
  check(ratings_.nnz() > 0, "AlsServer: no ratings");
  check(ratings_.is_sorted_unique(),
        "AlsServer: ratings must be sorted with unique entries "
        "(call sort_and_combine first)");
  check(config_.batch_width >= 1, "AlsServer: batch_width must be positive");
  p_ = config_.train.p;
  c_ = config_.train.c;

  // Per-user rated-item lists for recommendation filtering (entries are
  // sorted by (row, col), so each list arrives ascending).
  rated_.assign(static_cast<std::size_t>(ratings_.rows()), {});
  for (Index k = 0; k < ratings_.nnz(); ++k) {
    const auto e = ratings_.entry(k);
    rated_[static_cast<std::size_t>(e.row)].push_back(e.col);
  }

  // Train once, fault-free, on the padded problem; serving state only
  // ever sees the trained factors.
  AlsConfig tc = config_.train;
  const DimsRequirement req = dims_requirement(tc.kind, p_, c_);
  tc.rank = round_up(tc.rank, req.r_multiple);
  const PaddedProblem padded =
      pad_problem(tc.kind, p_, c_, ratings_,
                  DenseMatrix(ratings_.rows(), tc.rank),
                  DenseMatrix(ratings_.cols(), tc.rank));
  AlsResult trained = run_als(padded.s, tc);
  a_ = unpad_dense(trained.a, ratings_.rows(), tc.rank);
  b_ = unpad_dense(trained.b, ratings_.cols(), tc.rank);
  loss_history_ = std::move(trained.loss_history);

  perm_.resize(static_cast<std::size_t>(ratings_.rows()));
  std::iota(perm_.begin(), perm_.end(), Index{0});
  build_resident();
}

AlsServer::~AlsServer() = default;

void AlsServer::build_resident() {
  const Index m = ratings_.rows();
  const Index n = ratings_.cols();

  // Apply the current row permutation to the observations and the user
  // factors (scores and RMSE are permutation-invariant — only the rank
  // placement of user rows moves).
  CooMatrix permuted(m, n);
  permuted.reserve(ratings_.nnz());
  for (Index k = 0; k < ratings_.nnz(); ++k) {
    const auto e = ratings_.entry(k);
    permuted.push_back(perm_[static_cast<std::size_t>(e.row)], e.col,
                       e.value);
  }
  permuted.sort_and_combine();
  DenseMatrix a_perm(m, a_.cols());
  for (Index i = 0; i < m; ++i) {
    const auto src = a_.row(i);
    const auto dst = a_perm.row(perm_[static_cast<std::size_t>(i)]);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  PaddedProblem padded =
      pad_problem(config_.train.kind, p_, c_, permuted, a_perm, b_);
  s_pad_ = std::move(padded.s);
  a_pad_ = std::move(padded.a);
  b_pad_ = std::move(padded.b);
  mask_pad_ = s_pad_;
  for (auto& v : mask_pad_.values()) v = 1.0;
  width_multiple_ =
      dims_requirement(config_.train.kind, p_, c_).r_multiple;

  score_plans_.clear();
  rmse_plan_.emplace(make_plan(config_.train.kind, p_, c_, mask_pad_,
                               a_pad_.cols(), exec_));
  report_.plan_builds += 1;
  world_ = std::make_unique<SimWorld>(p_);
  retire_cache();
  cache_ = std::make_unique<ReplicationCache>(p_);
}

void AlsServer::retire_cache() {
  if (cache_ == nullptr) return;
  retired_hits_ += cache_->hits();
  retired_misses_ += cache_->misses();
}

const Plan& AlsServer::score_plan(Index width) {
  auto it = score_plans_.find(width);
  if (it == score_plans_.end()) {
    it = score_plans_
             .emplace(width, make_plan(config_.train.kind, p_, c_, s_pad_,
                                       width, exec_))
             .first;
    report_.plan_builds += 1;
  }
  return it->second;
}

std::vector<Scalar> AlsServer::similarity_column(Index user) const {
  check(user >= 0 && user < users(), "AlsServer: user ", user,
        " out of range [0, ", users(), ")");
  std::vector<Scalar> column(static_cast<std::size_t>(s_pad_.rows()),
                             Scalar{0});
  const auto anchor = a_.row(user);
  for (Index i = 0; i < users(); ++i) {
    const auto row = a_.row(i);
    Scalar dot = 0;
    for (std::size_t f = 0; f < row.size(); ++f) dot += row[f] * anchor[f];
    column[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] =
        dot;
  }
  return column;
}

std::vector<Recommendation> AlsServer::extract_top_k(
    const DenseMatrix& scores, Index column, Index user, int k) const {
  const auto& seen = rated_[static_cast<std::size_t>(user)];
  std::vector<Recommendation> candidates;
  candidates.reserve(static_cast<std::size_t>(items()));
  for (Index item = 0; item < items(); ++item) {
    if (std::binary_search(seen.begin(), seen.end(), item)) continue;
    candidates.push_back({item, scores(item, column)});
  }
  const auto count = std::min(static_cast<std::size_t>(k),
                              candidates.size());
  std::partial_sort(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(count),
      candidates.end(),
      [](const Recommendation& x, const Recommendation& y) {
        if (x.score != y.score) return x.score > y.score;
        return x.item < y.item;
      });
  candidates.resize(count);
  return candidates;
}

std::vector<std::vector<Recommendation>> AlsServer::top_k(
    std::span<const Index> user_ids, int k, bool exact_ties) {
  check(k >= 1, "AlsServer: top_k needs k >= 1");
  check(!(exact_ties && exec_.wire_precision == WirePrecision::BF16),
        "AlsServer: request demands exact top-k ties, but the server's "
        "bf16 wire precision can merge distinct scores into fabricated "
        "ties — serve this request from a full or f32 precision server");
  std::vector<std::vector<Recommendation>> out;
  out.reserve(user_ids.size());
  std::size_t taken = 0;
  while (taken < user_ids.size()) {
    // Batches are built against the CURRENT residency, one at a time —
    // a degrade or reshard absorbed after a batch re-permutes the rows,
    // so columns must never outlive the residency they were built for.
    RequestBatcher batcher(s_pad_.rows(), config_.batch_width,
                           width_multiple_);
    const std::size_t until =
        std::min(taken + static_cast<std::size_t>(config_.batch_width),
                 user_ids.size());
    for (std::size_t i = taken; i < until; ++i) {
      batcher.enqueue(similarity_column(user_ids[i]));
    }
    const auto batch = batcher.take();
    const Index width = batch.columns.cols();
    ExecuteOptions exec;
    exec.world = world_.get();
    exec.wire_precision = exec_.wire_precision;
    exec.index_codec = exec_.index_codec;
    const KernelResult result =
        score_plan(width).execute(Mode::SpMMB, s_pad_, batch.columns,
                                  DenseMatrix(s_pad_.cols(), width), exec);
    report_.batches += 1;
    report_.requests += static_cast<int>(batch.real);
    for (Index j = 0; j < batch.real; ++j) {
      out.push_back(
          extract_top_k(result.dense, j, user_ids[taken + static_cast<std::size_t>(j)], k));
    }
    taken = until;
    absorb(result.stats);
  }
  return out;
}

std::vector<Recommendation> AlsServer::top_k_one(Index user, int k,
                                                 bool exact_ties) {
  check(k >= 1, "AlsServer: top_k needs k >= 1");
  check(!(exact_ties && exec_.wire_precision == WirePrecision::BF16),
        "AlsServer: request demands exact top-k ties, but the server's "
        "bf16 wire precision can merge distinct scores into fabricated "
        "ties — serve this request from a full or f32 precision server");
  const Index width = width_multiple_;
  DenseMatrix narrow(s_pad_.rows(), width);
  const auto column = similarity_column(user);
  for (Index i = 0; i < narrow.rows(); ++i) {
    narrow(i, 0) = column[static_cast<std::size_t>(i)];
  }
  ExecuteOptions exec;
  exec.world = world_.get();
  exec.wire_precision = exec_.wire_precision;
  exec.index_codec = exec_.index_codec;
  const KernelResult result =
      score_plan(width).execute(Mode::SpMMB, s_pad_, narrow,
                                DenseMatrix(s_pad_.cols(), width), exec);
  report_.batches += 1;
  report_.requests += 1;
  auto recs = extract_top_k(result.dense, 0, user, k);
  absorb(result.stats);
  return recs;
}

Scalar AlsServer::observed_rmse() {
  ExecuteOptions exec;
  exec.world = world_.get();
  exec.cache = cache_.get();
  exec.wire_precision = exec_.wire_precision;
  exec.index_codec = exec_.index_codec;
  const KernelResult result =
      rmse_plan_->execute(Mode::SDDMM, mask_pad_, a_pad_, b_pad_, exec);
  report_.rmse_calls += 1;
  // The mask's SDDMM values are the model's predictions <a_i, b_j> at
  // every observed entry, in s_pad_ entry order — whose values are the
  // true ratings.
  const auto vals = s_pad_.values();
  double sum = 0;
  for (Index k = 0; k < s_pad_.nnz(); ++k) {
    const auto kk = static_cast<std::size_t>(k);
    const double err = vals[kk] - result.sddmm_values[kk];
    sum += err * err;
  }
  const auto rmse = static_cast<Scalar>(
      std::sqrt(sum / static_cast<double>(s_pad_.nnz())));
  absorb(result.stats);
  report_.cache_hits = retired_hits_ + cache_->hits();
  report_.cache_misses = retired_misses_ + cache_->misses();
  return rmse;
}

void AlsServer::reshard() {
  std::vector<Index> perm(static_cast<std::size_t>(users()));
  std::iota(perm.begin(), perm.end(), Index{0});
  for (Index i = users() - 1; i > 0; --i) {
    const Index j = reshard_rng_.next_index(0, i + 1);
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  perm_ = std::move(perm);
  report_.reshards += 1;
  report_.replans += 1;
  build_resident();
}

void AlsServer::absorb(const WorldStats& stats) {
  report_.setup_builds += stats.setup_builds();
  report_.last_imbalance = stats.load_imbalance();
  if (stats.degraded()) {
    report_.degraded = true;
    report_.degraded_rank = stats.degraded_rank();
    report_.degraded_from = stats.degraded_from();
    report_.degraded_to = stats.degraded_to();
    const auto [p2, c2] = shrink_config(config_.train.kind, p_, c_);
    p_ = p2;
    c_ = c2;
    // The crash is history — the shrunken residency serves fault-free.
    exec_.faults = nullptr;
    report_.replans += 1;
    build_resident();
    return;
  }
  if (config_.reshard_threshold > 0 &&
      report_.last_imbalance > config_.reshard_threshold) {
    reshard();
  }
}

} // namespace dsk
