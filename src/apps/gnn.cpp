#include "apps/gnn.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "dense/dense_ops.hpp"

namespace dsk {

namespace {

std::vector<DenseMatrix> make_weights(const GnnConfig& config) {
  Rng rng(config.seed);
  std::vector<DenseMatrix> weights;
  for (std::size_t l = 0; l + 1 < config.layer_widths.size(); ++l) {
    DenseMatrix w(config.layer_widths[l], config.layer_widths[l + 1]);
    w.fill_gaussian(rng, 1.0 / std::sqrt(static_cast<double>(
                             config.layer_widths[l])));
    weights.push_back(std::move(w));
  }
  return weights;
}

void relu_inplace(DenseMatrix& m) {
  for (auto& x : m.data()) {
    if (x < 0) x = 0;
  }
}

void validate(const CooMatrix& adjacency, const DenseMatrix& features,
              const GnnConfig& config) {
  check(adjacency.rows() == adjacency.cols(),
        "gnn_forward: adjacency must be square");
  check(features.rows() == adjacency.rows(),
        "gnn_forward: feature rows must match node count");
  check(config.layer_widths.size() >= 2,
        "gnn_forward: need at least one layer (two widths)");
  check(features.cols() == config.layer_widths.front(),
        "gnn_forward: feature width ", features.cols(),
        " != layer_widths.front() = ", config.layer_widths.front());
}

} // namespace

CooMatrix row_normalized(const CooMatrix& adjacency) {
  std::vector<Scalar> degree(static_cast<std::size_t>(adjacency.rows()),
                             Scalar{0});
  for (Index k = 0; k < adjacency.nnz(); ++k) {
    degree[static_cast<std::size_t>(adjacency.entry(k).row)] += 1.0;
  }
  CooMatrix out(adjacency.rows(), adjacency.cols());
  out.reserve(adjacency.nnz());
  for (Index k = 0; k < adjacency.nnz(); ++k) {
    const auto e = adjacency.entry(k);
    out.push_back(e.row, e.col,
                  1.0 / degree[static_cast<std::size_t>(e.row)]);
  }
  return out;
}

GnnResult gnn_forward(const CooMatrix& adjacency,
                      const DenseMatrix& features, const GnnConfig& config) {
  validate(adjacency, features, config);
  auto algo = make_algorithm(config.kind, config.p, config.c);

  const CooMatrix s = config.normalize_adjacency
                          ? row_normalized(adjacency)
                          : adjacency;
  const auto weights = make_weights(config);

  GnnResult result;
  DenseMatrix h = features;
  for (std::size_t l = 0; l < weights.size(); ++l) {
    const Index width_out = config.layer_widths[l + 1];
    algo->validate_dims(s.rows(), s.cols(), width_out);

    // Local feature transform H W (each rank transforms its rows).
    DenseMatrix hw(h.rows(), width_out);
    gemm(h, weights[l], hw);
    result.costs.add_app_flops(
        static_cast<std::uint64_t>(2 * h.rows() * h.cols() * width_out),
        config.p, config.machine);

    // Distributed aggregation S . (H W).
    auto aggregated = algo->run_kernel(Mode::SpMMA, s, hw, hw);
    result.costs.add_kernel(aggregated.stats, config.machine);
    result.costs.add_app_comm(
        redistribution_words(config.kind, static_cast<double>(s.rows()),
                             static_cast<double>(width_out), config.p),
        config.machine);

    h = std::move(aggregated.dense);
    if (config.relu && l + 1 < weights.size()) {
      relu_inplace(h);
      result.costs.add_app_flops(static_cast<std::uint64_t>(h.size()),
                                 config.p, config.machine);
    }
  }
  result.output = std::move(h);
  return result;
}

DenseMatrix gnn_forward_reference(const CooMatrix& adjacency,
                                  const DenseMatrix& features,
                                  const GnnConfig& config) {
  validate(adjacency, features, config);
  const CooMatrix s = config.normalize_adjacency
                          ? row_normalized(adjacency)
                          : adjacency;
  const auto weights = make_weights(config);

  DenseMatrix h = features;
  for (std::size_t l = 0; l < weights.size(); ++l) {
    DenseMatrix hw(h.rows(), config.layer_widths[l + 1]);
    gemm(h, weights[l], hw);
    DenseMatrix next(s.rows(), hw.cols());
    for (Index k = 0; k < s.nnz(); ++k) {
      const auto e = s.entry(k);
      for (Index f = 0; f < hw.cols(); ++f) {
        next(e.row, f) += e.value * hw(e.col, f);
      }
    }
    h = std::move(next);
    if (config.relu && l + 1 < weights.size()) {
      relu_inplace(h);
    }
  }
  return h;
}

} // namespace dsk
