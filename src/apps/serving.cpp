#include "apps/serving.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dsk {

Index snap_batch_width(Index pending, Index max_width, Index multiple) {
  check(pending >= 1, "snap_batch_width: no pending requests");
  check(max_width >= 1 && multiple >= 1,
        "snap_batch_width: max_width and multiple must be positive");
  Index width = std::min(pending, max_width);
  for (const Index spot : {Index{32}, Index{64}, Index{128}}) {
    if (spot >= width && spot <= max_width) {
      width = spot;
      break;
    }
  }
  return (width + multiple - 1) / multiple * multiple;
}

RequestBatcher::RequestBatcher(Index rows, Index max_width, Index multiple)
    : rows_(rows), max_width_(max_width), multiple_(multiple) {
  check(rows >= 1, "RequestBatcher: rows must be positive");
  check(max_width >= 1 && multiple >= 1,
        "RequestBatcher: max_width and multiple must be positive");
}

void RequestBatcher::enqueue(std::vector<Scalar> column) {
  check(static_cast<Index>(column.size()) == rows_,
        "RequestBatcher: column has ", column.size(), " entries, need ",
        rows_);
  pending_.push_back(std::move(column));
}

RequestBatcher::Batch RequestBatcher::take() {
  check(!pending_.empty(), "RequestBatcher: take() with nothing pending");
  Batch batch;
  batch.real = std::min(pending(), max_width_);
  const Index width = snap_batch_width(batch.real, max_width_, multiple_);
  batch.columns = DenseMatrix(rows_, width);
  for (Index j = 0; j < batch.real; ++j) {
    const auto& column = pending_.front();
    for (Index i = 0; i < rows_; ++i) {
      batch.columns(i, j) = column[static_cast<std::size_t>(i)];
    }
    pending_.pop_front();
  }
  return batch;
}

} // namespace dsk
