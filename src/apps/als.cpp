#include "apps/als.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "dense/dense_ops.hpp"
#include "local/reference.hpp"

namespace dsk {

namespace {

/// Indicator mask of the observation pattern (values = 1).
CooMatrix indicator(const CooMatrix& observed) {
  CooMatrix mask = observed;
  for (auto& v : mask.values()) {
    v = 1.0;
  }
  return mask;
}

/// One batched-CG half-sweep updating `x` (the factor with x.rows()
/// rows) for fixed `other`, solving (M_i + lambda I) x_i = rhs_i for all
/// rows at once. `orientation` selects FusedMMA (A update) or FusedMMB
/// (B update); `s`/`mask` are the observations and their indicator in
/// the orientation's layout (the caller passes S for A-updates, the same
/// S for B-updates — the kernels handle the transposition internally).
void cg_half_sweep(const DistAlgorithm& algo, const AlsConfig& config,
                   const CooMatrix& observed, const CooMatrix& mask,
                   FusedOrientation orientation, const DenseMatrix& other,
                   DenseMatrix& x, AppCosts& costs) {
  const Index rows = x.rows();
  const Index r = x.cols();
  const auto m = static_cast<double>(rows);

  // Per-iteration application-side charges (documented in app_stats.hpp):
  // two batched dot reductions and the axpy flops; plus one output
  // redistribution per FusedMM for displaced output layouts.
  const double dot_words =
      rowdot_reduction_words(algo.kind(), config.p, config.c, m);
  const double redist_words = redistribution_words(
      algo.kind(), m, static_cast<double>(r), config.p);

  auto matvec = [&](const DenseMatrix& v) {
    FusedResult fused = orientation == FusedOrientation::A
                            ? algo.run_fusedmm(FusedOrientation::A,
                                               config.elision, mask, v,
                                               other)
                            : algo.run_fusedmm(FusedOrientation::B,
                                               config.elision, mask, other,
                                               v);
    costs.add_kernel(fused.stats, config.machine);
    costs.add_app_comm(redist_words, config.machine);
    axpy(config.lambda, v, fused.output);
    costs.add_app_flops(
        static_cast<std::uint64_t>(2 * rows * r), config.p, config.machine);
    return std::move(fused.output);
  };

  // rhs = SpMM(observed) in the matching orientation.
  KernelResult rhs_result =
      orientation == FusedOrientation::A
          ? algo.run_kernel(Mode::SpMMA, observed, x, other)
          : algo.run_kernel(Mode::SpMMB, observed, other, x);
  costs.add_kernel(rhs_result.stats, config.machine);
  DenseMatrix rhs = std::move(rhs_result.dense);

  // Batched CG: every row runs its own CG with shared kernel calls.
  DenseMatrix residual = rhs;
  axpy(-1.0, matvec(x), residual);
  DenseMatrix direction = residual;
  auto rr = batched_row_dot(residual, residual);
  costs.add_app_comm(dot_words, config.machine);

  for (int iter = 0; iter < config.cg_iterations; ++iter) {
    DenseMatrix q = matvec(direction);
    const auto dq = batched_row_dot(direction, q);
    costs.add_app_comm(dot_words, config.machine);
    std::vector<Scalar> alpha(static_cast<std::size_t>(rows));
    for (Index i = 0; i < rows; ++i) {
      const auto k = static_cast<std::size_t>(i);
      alpha[k] = dq[k] > 1e-300 ? rr[k] / dq[k] : 0.0;
    }
    axpy_rows(alpha, direction, x);
    for (auto& a : alpha) a = -a;
    axpy_rows(alpha, q, residual);
    const auto rr_next = batched_row_dot(residual, residual);
    costs.add_app_comm(dot_words, config.machine);
    std::vector<Scalar> beta(static_cast<std::size_t>(rows));
    for (Index i = 0; i < rows; ++i) {
      const auto k = static_cast<std::size_t>(i);
      beta[k] = rr[k] > 1e-300 ? rr_next[k] / rr[k] : 0.0;
    }
    // direction = residual + beta .* direction
    scale_rows(direction, beta);
    axpy(1.0, residual, direction);
    rr = rr_next;
    // dots + three row axpys + direction update: ~10 m r flops.
    costs.add_app_flops(static_cast<std::uint64_t>(10 * rows * r), config.p,
                        config.machine);
  }
}

} // namespace

Scalar als_loss(const CooMatrix& observed, const DenseMatrix& a,
                const DenseMatrix& b, Scalar lambda) {
  Scalar loss = 0;
  for (Index k = 0; k < observed.nnz(); ++k) {
    const auto e = observed.entry(k);
    Scalar dot = 0;
    for (Index f = 0; f < a.cols(); ++f) {
      dot += a(e.row, f) * b(e.col, f);
    }
    const Scalar err = e.value - dot;
    loss += err * err;
  }
  const Scalar na = a.frobenius_norm();
  const Scalar nb = b.frobenius_norm();
  return loss + lambda * (na * na + nb * nb);
}

AlsResult run_als(const CooMatrix& observed, const AlsConfig& config) {
  check(observed.nnz() > 0, "run_als: no observations");
  check(config.rank >= 1 && config.cg_iterations >= 1 && config.sweeps >= 1,
        "run_als: invalid configuration");
  auto algo = make_algorithm(config.kind, config.p, config.c);
  check(algo->supports(config.elision), "run_als: ", to_string(config.kind),
        " does not support ", to_string(config.elision));
  algo->validate_dims(observed.rows(), observed.cols(), config.rank);

  const CooMatrix mask = indicator(observed);

  Rng rng(config.seed);
  AlsResult result{DenseMatrix(observed.rows(), config.rank),
                   DenseMatrix(observed.cols(), config.rank),
                   {},
                   {}};
  // Small random init keeps the first residuals well-scaled.
  result.a.fill_gaussian(rng, 0.1);
  result.b.fill_gaussian(rng, 0.1);
  result.loss_history.push_back(
      als_loss(observed, result.a, result.b, config.lambda));

  for (int sweep = 0; sweep < config.sweeps; ++sweep) {
    cg_half_sweep(*algo, config, observed, mask, FusedOrientation::A,
                  result.b, result.a, result.costs);
    cg_half_sweep(*algo, config, observed, mask, FusedOrientation::B,
                  result.a, result.b, result.costs);
    result.loss_history.push_back(
        als_loss(observed, result.a, result.b, config.lambda));
    // Loss evaluation: one SDDMM-equivalent pass.
    result.costs.add_app_flops(
        static_cast<std::uint64_t>(2 * observed.nnz() * config.rank),
        config.p, config.machine);
  }
  return result;
}

} // namespace dsk
