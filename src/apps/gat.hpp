#pragma once
/// \file gat.hpp
/// Multi-head Graph Attention Network forward pass (paper Section VI-E,
/// after Velickovic et al. [3]). One head computes
///   e_ij   = LeakyReLU(a^T [W h_i || W h_j])        for (i,j) in E
///   S'     = row_softmax(S * e)                      (attention weights)
///   H'_h   = S' . (H W)                              (aggregation)
/// and a multi-head layer concatenates the H'_h.
///
/// Because the attention vector a acts separately on the two halves of
/// the concatenation, e_ij = u_i + v_j with u = (HW) a_left and
/// v = (HW) a_right, so computing all logits is an SDDMM with the rank-2
/// embeddings [u | 1] and [1 | v] padded to the layer width — the
/// "slight modification of Eq. 1 with an identical communication
/// pattern to SDDMM" the paper describes. The aggregation is a
/// distributed SpMMA. Softmax row statistics and the local W transform
/// are application-side work charged per AppCosts.
///
/// The paper excludes 1.5D local kernel fusion from the GAT benchmark
/// ("incompatible with softmax regularization of learned edge weights"):
/// softmax needs the full SDDMM output before any aggregation, so
/// gat_forward rejects Elision::LocalKernelFusion when softmax is on.

#include "apps/app_stats.hpp"
#include "dist/algorithm.hpp"
#include "sparse/coo.hpp"

namespace dsk {

struct GatConfig {
  int heads = 4;
  Index out_features = 8;        ///< per-head output width r'
  Scalar negative_slope = 0.2;   ///< LeakyReLU slope for attention logits
  bool softmax = true;           ///< row-softmax the attention weights
  std::uint64_t seed = 0xA77E;   ///< random W / a (paper: random weights)

  AlgorithmKind kind = AlgorithmKind::DenseShift15D;
  int p = 4;
  int c = 1;
  Elision elision = Elision::None; ///< for the SDDMM+SpMM sequence
  MachineModel machine = MachineModel::cori_knl();
};

struct GatResult {
  /// n x (heads * out_features) concatenated head outputs.
  DenseMatrix output;
  AppCosts costs;
};

/// Forward pass over a square adjacency matrix (n x n, any values; the
/// pattern defines edges) with node features (n x in_features).
GatResult gat_forward(const CooMatrix& adjacency,
                      const DenseMatrix& features, const GatConfig& config);

/// Serial reference (independent code path) for verification.
DenseMatrix gat_forward_reference(const CooMatrix& adjacency,
                                  const DenseMatrix& features,
                                  const GatConfig& config);

} // namespace dsk
