#include "apps/app_stats.hpp"

#include "common/error.hpp"
#include "dist/grid.hpp"

namespace dsk {

double rowdot_reduction_words(AlgorithmKind kind, int p, int c, double m) {
  switch (kind) {
    case AlgorithmKind::DenseShift15D:
    case AlgorithmKind::Baseline1D:
      return 0.0; // full rows are local
    case AlgorithmKind::SparseShift15D: {
      const double group = static_cast<double>(p) / c;
      if (group <= 1) return 0.0;
      return 2.0 * (group - 1) / group * (m / c);
    }
    case AlgorithmKind::DenseRepl25D: {
      const Grid25D grid(p, c);
      const double group = grid.q();
      if (group <= 1) return 0.0;
      return 2.0 * (group - 1) / group * (m / (group * c));
    }
    case AlgorithmKind::SparseRepl25D: {
      const Grid25D grid(p, c);
      const double group = static_cast<double>(grid.q()) * c;
      if (group <= 1) return 0.0;
      return 2.0 * (group - 1) / group * (m / grid.q());
    }
  }
  fail("rowdot_reduction_words: unknown kind");
}

double redistribution_words(AlgorithmKind kind, double m, double r, int p) {
  switch (kind) {
    case AlgorithmKind::DenseShift15D:
    case AlgorithmKind::SparseShift15D:
    case AlgorithmKind::Baseline1D:
      return 0.0; // output distribution == input distribution
    case AlgorithmKind::DenseRepl25D:
    case AlgorithmKind::SparseRepl25D:
      return m * r / p; // one displaced block per rank (Section VI-E)
  }
  fail("redistribution_words: unknown kind");
}

void AppCosts::add_kernel(const WorldStats& stats,
                          const MachineModel& machine) {
  fused_replication_seconds +=
      stats.modeled_phase_seconds(Phase::Replication, machine);
  fused_propagation_seconds +=
      stats.modeled_phase_seconds(Phase::Propagation, machine);
  fused_computation_seconds +=
      stats.modeled_phase_seconds(Phase::Computation, machine);
  fused_replication_words += stats.max_words(Phase::Replication);
  fused_propagation_words += stats.max_words(Phase::Propagation);
}

void AppCosts::add_app_comm(double words, const MachineModel& machine) {
  if (words <= 0) return; // layouts needing no app comm pay nothing
  app_comm_words += words;
  app_comm_seconds += machine.beta_seconds_per_word * words +
                      machine.alpha_seconds_per_message;
}

void AppCosts::add_app_flops(std::uint64_t flops, int p,
                             const MachineModel& machine) {
  app_flops += flops;
  app_comp_seconds += machine.gamma_seconds_per_flop *
                      static_cast<double>(flops) / p;
}

} // namespace dsk
