#include "apps/gat.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "dense/dense_ops.hpp"
#include "local/gat_kernels.hpp"
#include "sparse/convert.hpp"

namespace dsk {

namespace {

struct HeadWeights {
  DenseMatrix w;              ///< in_features x out_features
  std::vector<Scalar> a_left; ///< out_features
  std::vector<Scalar> a_right;
};

std::vector<HeadWeights> make_weights(Index in_features, Index out_features,
                                      int heads, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<HeadWeights> weights;
  weights.reserve(static_cast<std::size_t>(heads));
  for (int h = 0; h < heads; ++h) {
    HeadWeights hw{DenseMatrix(in_features, out_features),
                   std::vector<Scalar>(static_cast<std::size_t>(
                       out_features)),
                   std::vector<Scalar>(static_cast<std::size_t>(
                       out_features))};
    hw.w.fill_gaussian(rng, 1.0 / std::sqrt(static_cast<double>(
                                in_features)));
    for (auto& x : hw.a_left) x = rng.next_gaussian();
    for (auto& x : hw.a_right) x = rng.next_gaussian();
    weights.push_back(std::move(hw));
  }
  return weights;
}

/// Per-node attention scalars u = (HW) a_left, v = (HW) a_right.
std::pair<std::vector<Scalar>, std::vector<Scalar>> node_scalars(
    const DenseMatrix& hw, const HeadWeights& weights) {
  std::vector<Scalar> u(static_cast<std::size_t>(hw.rows()));
  std::vector<Scalar> v(static_cast<std::size_t>(hw.rows()));
  for (Index i = 0; i < hw.rows(); ++i) {
    Scalar su = 0, sv = 0;
    const auto row = hw.row(i);
    for (Index f = 0; f < hw.cols(); ++f) {
      su += row[static_cast<std::size_t>(f)] *
            weights.a_left[static_cast<std::size_t>(f)];
      sv += row[static_cast<std::size_t>(f)] *
            weights.a_right[static_cast<std::size_t>(f)];
    }
    u[static_cast<std::size_t>(i)] = su;
    v[static_cast<std::size_t>(i)] = sv;
  }
  return {std::move(u), std::move(v)};
}

/// Rank-2 embeddings padded to the layer width: SDDMM(mask, [u|1|0..],
/// [1|v|0..]) produces exactly u_i + v_j per edge while communicating
/// full-width rows (the paper's attention op has SDDMM's pattern).
std::pair<DenseMatrix, DenseMatrix> logit_embeddings(
    std::span<const Scalar> u, std::span<const Scalar> v, Index width) {
  check(width >= 2, "gat: layer width must be at least 2");
  DenseMatrix ua(static_cast<Index>(u.size()), width);
  DenseMatrix vb(static_cast<Index>(v.size()), width);
  for (std::size_t i = 0; i < u.size(); ++i) {
    ua(static_cast<Index>(i), 0) = u[i];
    ua(static_cast<Index>(i), 1) = 1.0;
  }
  for (std::size_t j = 0; j < v.size(); ++j) {
    vb(static_cast<Index>(j), 0) = 1.0;
    vb(static_cast<Index>(j), 1) = v[j];
  }
  return {std::move(ua), std::move(vb)};
}

/// Attention weights for one head as a COO with the adjacency pattern.
CooMatrix attention_matrix(const CooMatrix& adjacency,
                           std::span<const Scalar> logits,
                           const GatConfig& config) {
  CooMatrix attn = adjacency;
  auto values = attn.values();
  for (std::size_t k = 0; k < values.size(); ++k) {
    values[k] = logits[k];
  }
  // The local GAT kernels accept a ThreadPool for nnz-balanced row
  // scheduling, but simulated ranks are already one thread each, so the
  // per-rank calls stay serial (pool = nullptr).
  leaky_relu(values, config.negative_slope);
  if (config.softmax) {
    CsrMatrix csr = coo_to_csr(attn); // sorted input: same entry order
    row_softmax(csr);
    const auto soft = csr.values();
    for (std::size_t k = 0; k < values.size(); ++k) {
      values[k] = soft[k];
    }
  }
  return attn;
}

} // namespace

GatResult gat_forward(const CooMatrix& adjacency,
                      const DenseMatrix& features, const GatConfig& config) {
  check(adjacency.rows() == adjacency.cols(),
        "gat_forward: adjacency must be square");
  check(features.rows() == adjacency.rows(),
        "gat_forward: feature rows must match node count");
  check(!(config.softmax && config.elision == Elision::LocalKernelFusion),
        "gat_forward: local kernel fusion is incompatible with softmax "
        "edge regularization (paper Section VI-E)");
  auto algo = make_algorithm(config.kind, config.p, config.c);
  check(algo->supports(config.elision), "gat_forward: ",
        to_string(config.kind), " does not support ",
        to_string(config.elision));
  algo->validate_dims(adjacency.rows(), adjacency.cols(),
                      config.out_features);

  const Index n = adjacency.rows();
  GatResult result{
      DenseMatrix(n, static_cast<Index>(config.heads) * config.out_features),
      {}};

  // An indicator copy drives the SDDMM (values multiply the dots, so use
  // ones and keep the raw logits).
  CooMatrix mask = adjacency;
  for (auto& v : mask.values()) v = 1.0;

  const auto weights = make_weights(features.cols(), config.out_features,
                                    config.heads, config.seed);

  for (int h = 0; h < config.heads; ++h) {
    // Local transform HW: each rank transforms its feature rows; flops
    // charged, no communication.
    DenseMatrix hw(n, config.out_features);
    gemm(features, weights[static_cast<std::size_t>(h)].w, hw);
    result.costs.add_app_flops(
        static_cast<std::uint64_t>(2 * n * features.cols() *
                                   config.out_features),
        config.p, config.machine);

    auto [u, v] = node_scalars(hw, weights[static_cast<std::size_t>(h)]);
    result.costs.add_app_flops(
        static_cast<std::uint64_t>(4 * n * config.out_features), config.p,
        config.machine);

    // Distributed SDDMM producing the attention logits.
    auto [ua, vb] = logit_embeddings(u, v, config.out_features);
    const auto logits = algo->run_kernel(Mode::SDDMM, mask, ua, vb);
    result.costs.add_kernel(logits.stats, config.machine);

    // LeakyReLU + softmax: row statistics need one combine across the
    // ranks sharing a row of S (two batched reductions: max and sum).
    const CooMatrix attn =
        attention_matrix(adjacency, logits.sddmm_values, config);
    result.costs.add_app_flops(
        static_cast<std::uint64_t>(3 * adjacency.nnz()), config.p,
        config.machine);
    if (config.softmax) {
      result.costs.add_app_comm(
          2 * rowdot_reduction_words(config.kind, config.p, config.c,
                                     static_cast<double>(n)),
          config.machine);
    }

    // Distributed aggregation H' = S' . (HW).
    const auto aggregated = algo->run_kernel(Mode::SpMMA, attn, hw, hw);
    result.costs.add_kernel(aggregated.stats, config.machine);
    result.costs.add_app_comm(
        redistribution_words(config.kind, static_cast<double>(n),
                             static_cast<double>(config.out_features),
                             config.p),
        config.machine);

    // Concatenate into the multi-head output (local).
    result.output.place(aggregated.dense, 0,
                        static_cast<Index>(h) * config.out_features);
  }
  return result;
}

DenseMatrix gat_forward_reference(const CooMatrix& adjacency,
                                  const DenseMatrix& features,
                                  const GatConfig& config) {
  const Index n = adjacency.rows();
  const auto weights = make_weights(features.cols(), config.out_features,
                                    config.heads, config.seed);
  DenseMatrix out(n, static_cast<Index>(config.heads) * config.out_features);
  for (int h = 0; h < config.heads; ++h) {
    DenseMatrix hw(n, config.out_features);
    gemm(features, weights[static_cast<std::size_t>(h)].w, hw);
    auto [u, v] = node_scalars(hw, weights[static_cast<std::size_t>(h)]);

    std::vector<Scalar> logits(static_cast<std::size_t>(adjacency.nnz()));
    for (Index k = 0; k < adjacency.nnz(); ++k) {
      const auto e = adjacency.entry(k);
      logits[static_cast<std::size_t>(k)] =
          u[static_cast<std::size_t>(e.row)] +
          v[static_cast<std::size_t>(e.col)];
    }
    const CooMatrix attn = attention_matrix(adjacency, logits, config);

    // Dense aggregation.
    for (Index k = 0; k < attn.nnz(); ++k) {
      const auto e = attn.entry(k);
      for (Index f = 0; f < config.out_features; ++f) {
        out(e.row, static_cast<Index>(h) * config.out_features + f) +=
            e.value * hw(e.col, f);
      }
    }
  }
  return out;
}

} // namespace dsk
