#pragma once
/// \file serve_als.hpp
/// The serving layer's first tenant: an ALS recommender that trains once
/// (apps/als.hpp), then answers scoring requests from resident state —
/// an immutable Plan per request width (dist/plan.hpp), one resident
/// SimWorld reused by every request, and a cross-call ReplicationCache
/// for the stationary factor. Requests batch through apps/serving.hpp.
///
/// Scoring: a request for user u builds the user-similarity column
///   sim_u[i] = <a_i, a_u>                        (local, factor-space)
/// and one batched SpMMB pass over the ratings
///   scores = S^T · [sim_{u_1} | ... | sim_{u_k}]
/// ranks every item by similarity-weighted popularity. Column j of the
/// batched pass is bit-identical to serving request j alone, so the
/// batcher is a pure traffic optimization. The per-batch request matrix
/// is never cacheable (it changes every call); the cache serves
/// observed_rmse, whose SDDMM replicates the stationary factor A —
/// after the first call its replication traffic drops to zero until the
/// server reshards or degrades.
///
/// Failure story (PR-6/7 carried through the Plan): faults armed in
/// AlsServerConfig::exec apply to serving requests. Recoverable crashes
/// heal inside the run; an unrecoverable crash with exec.degrade set
/// makes that request degrade one-shot internally, after which the
/// server re-plans once onto the shrunken grid (shrink_config), rebuilds
/// its resident world and cache fault-free, and keeps serving.
///
/// Load balance: every pass records WorldStats::load_imbalance. When it
/// exceeds reshard_threshold between batches, the server draws a new
/// random row permutation (moving hot user rows apart), rebuilds the
/// Plan, and invalidates the cache — scores are permutation-invariant,
/// so responses are unchanged.

#include <map>
#include <memory>
#include <optional>
#include <span>

#include "apps/als.hpp"
#include "apps/serving.hpp"
#include "common/rng.hpp"
#include "dist/plan.hpp"
#include "dist/replication_cache.hpp"
#include "runtime/world.hpp"

namespace dsk {

struct AlsServerConfig {
  AlsConfig train;                  ///< trained fault-free at startup
  /// Serving-time execution knobs (schedule / replication / propagation
  /// / faults / wire codec); faults are cleared automatically after a
  /// degrade. The wire codec is forwarded into every pass through
  /// ExecuteOptions; bf16 precision is rejected by requests demanding
  /// exact top-k ties (see top_k).
  AlgorithmOptions exec;
  Index batch_width = 128;          ///< max requests per kernel pass
  /// Reshard when a pass's load_imbalance exceeds this (0 = never).
  double reshard_threshold = 0.0;
  std::uint64_t reshard_seed = 0xBA7C4;
};

struct Recommendation {
  Index item = 0;
  Scalar score = 0;
};

/// Counters the server accumulates across requests (tests and the CLI
/// read these; setup_builds staying 0 is the resident-plan guarantee).
struct ServeReport {
  int requests = 0;      ///< scoring requests answered
  int batches = 0;       ///< batched kernel passes run
  int rmse_calls = 0;
  int setup_builds = 0;  ///< per-request setup builds (resident plan: 0)
  int plan_builds = 0;   ///< Plans built (lazy widths + rebuilds)
  int replans = 0;       ///< resident rebuilds (degrade or reshard)
  int reshards = 0;
  bool degraded = false;
  int degraded_rank = -1;
  int degraded_from = 0;
  int degraded_to = 0;
  double last_imbalance = 1.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class AlsServer {
 public:
  /// Train the factorization and build the resident serving state.
  /// `ratings` is the users x items observation matrix (sorted unique).
  AlsServer(const CooMatrix& ratings, const AlsServerConfig& config);
  ~AlsServer();

  int p() const { return p_; }
  int c() const { return c_; }
  Index users() const { return ratings_.rows(); }
  Index items() const { return ratings_.cols(); }
  const std::vector<Scalar>& loss_history() const { return loss_history_; }
  const ServeReport& report() const { return report_; }

  /// Top-k unrated items for each requested user, served in batched
  /// kernel passes of up to batch_width requests. The configured wire
  /// codec (AlsServerConfig::exec) rides each pass through
  /// ExecuteOptions. `exact_ties` declares the request demands exact
  /// top-k tie resolution: bf16 wire precision is rejected, because its
  /// quantized scores can merge distinct full-precision scores into
  /// fabricated ties (full and f32 keep score ordering reproducible).
  std::vector<std::vector<Recommendation>> top_k(
      std::span<const Index> user_ids, int k, bool exact_ties = false);

  /// One user through an unbatched narrow pass (the minimal planned
  /// width) — the baseline the batcher is measured against. `exact_ties`
  /// as in top_k.
  std::vector<Recommendation> top_k_one(Index user, int k,
                                        bool exact_ties = false);

  /// RMSE of the model over the observed entries, via one SDDMM against
  /// the resident plan; the stationary factor rides the replication
  /// cache, so repeat calls move zero replication words.
  Scalar observed_rmse();

  /// Force a reshard now (new row permutation, plan rebuild, cache
  /// invalidation) — the imbalance trigger calls this automatically.
  void reshard();

 private:
  void build_resident();
  const Plan& score_plan(Index width);
  std::vector<Scalar> similarity_column(Index user) const;
  std::vector<Recommendation> extract_top_k(const DenseMatrix& scores,
                                            Index column, Index user,
                                            int k) const;
  void absorb(const WorldStats& stats);
  void retire_cache();

  AlsServerConfig config_;
  AlgorithmOptions exec_;    ///< current exec options (faults drop on degrade)
  CooMatrix ratings_;        ///< original-order observations
  std::vector<std::vector<Index>> rated_;  ///< per user: rated items, sorted
  DenseMatrix a_;            ///< user factors, original order, trained width
  DenseMatrix b_;            ///< item factors
  std::vector<Scalar> loss_history_;

  int p_ = 0, c_ = 0;        ///< current grid (shrinks on degrade)
  std::vector<Index> perm_;  ///< original user row -> resident row
  CooMatrix s_pad_;          ///< permuted + padded ratings
  CooMatrix mask_pad_;       ///< indicator of s_pad_ (rmse plan input)
  DenseMatrix a_pad_;        ///< permuted + padded user factors
  DenseMatrix b_pad_;
  Index width_multiple_ = 1; ///< current grid's r divisibility

  std::map<Index, Plan> score_plans_;  ///< lazy, keyed by pass width
  std::optional<Plan> rmse_plan_;
  std::unique_ptr<SimWorld> world_;
  std::unique_ptr<ReplicationCache> cache_;
  std::uint64_t retired_hits_ = 0;   ///< hits of caches dropped by rebuilds
  std::uint64_t retired_misses_ = 0;
  Rng reshard_rng_;
  ServeReport report_;
};

} // namespace dsk
