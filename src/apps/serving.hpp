#pragma once
/// \file serving.hpp
/// Request batching for the serving layer (dist/plan.hpp): many narrow
/// right-hand sides coalesce into one wide kernel pass. A request is a
/// single column; serving them one at a time pays the per-call
/// replication traffic once per request, while a batched pass pays it
/// once per batch (and lands on the local kernels' specialized widths —
/// width_dispatch peaks at r in {32, 64, 128}). Column j of a batched
/// SpMM output equals the unbatched output for request j bit-exactly:
/// the kernels never mix columns, so batching changes traffic, not
/// results.

#include <deque>
#include <vector>

#include "dense/dense_matrix.hpp"

namespace dsk {

/// Snap a pending-request count to a kernel sweet-spot width: the
/// smallest of {32, 64, 128} that fits at least min(pending, max_width)
/// requests and does not exceed max_width, rounded up to `multiple`
/// (the plan's width divisibility; see dims_requirement). When
/// max_width is below every sweet spot the count itself is rounded up
/// to `multiple`.
Index snap_batch_width(Index pending, Index max_width = 128,
                       Index multiple = 1);

/// FIFO coalescer: enqueue request columns, take() packs up to
/// max_width of them into one rows x snapped-width matrix. Trailing
/// pad columns are zero — harmless extra width that keeps every pass
/// on a planned width.
class RequestBatcher {
 public:
  RequestBatcher(Index rows, Index max_width = 128, Index multiple = 1);

  Index rows() const { return rows_; }
  Index max_width() const { return max_width_; }
  Index pending() const { return static_cast<Index>(pending_.size()); }

  /// Queue one request column (must have exactly rows() entries).
  void enqueue(std::vector<Scalar> column);

  struct Batch {
    DenseMatrix columns; ///< rows x snapped width, request j in column j
    Index real = 0;      ///< leading columns that carry requests
  };

  /// Pack the oldest min(pending, max_width) requests into one pass.
  /// Throws when nothing is pending.
  Batch take();

 private:
  Index rows_;
  Index max_width_;
  Index multiple_;
  std::deque<std::vector<Scalar>> pending_;
};

} // namespace dsk
