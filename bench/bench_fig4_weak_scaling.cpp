/// Figure 4 reproduction: weak scaling on Erdos-Renyi matrices, both
/// setups, all eight algorithm variants, at the best observed
/// replication factor per configuration.
///
/// Setup 1 (paper: n = 2^16 p, 32 nnz/row, r = 256): p nodes process a
/// sparse matrix of side n0*p with fixed nnz/row and fixed r, so FLOPs
/// per node stay constant while phi stays 1/8 and 1.5D communication
/// grows as sqrt(p).
/// Setup 2 (paper: n = 2^16 sqrt(p), nnz/row = 32 sqrt(p)): phi doubles
/// with every 4x step, so the sparse-shifting algorithm degrades while
/// dense shifting stays flat.
///
/// Simulation scale: n0 = 2^10, d0 = 4, r = 32 — phi matches the paper
/// (d0/r = 1/8) and the scaling exponents are dimension-independent.

#include <cmath>

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

void run_setup(const char* title, const char* setup_id,
               const std::vector<int>& node_counts,
               const std::function<Workload(int)>& make_workload,
               JsonRecords& records) {
  print_header(title);
  std::printf("%-30s", "algorithm \\ p");
  for (const int p : node_counts) {
    std::printf(" %11d", p);
  }
  std::printf("\n");
  for (const auto& variant : paper_variants()) {
    std::printf("%-30s", variant.name);
    for (const int p : node_counts) {
      const auto w = make_workload(p);
      const auto best = best_over_c(variant.kind, variant.elision, p, w);
      if (best.total_seconds < 0) {
        std::printf(" %11s", "n/a");
      } else {
        std::printf(" %9.3fms", 1e3 * best.total_seconds);
        add_dist_record(records, "fig4_weak_scaling", setup_id,
                        variant.kind, variant.elision, p, w, best);
      }
    }
    std::printf("\n");
  }
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path = out_path_from_args(argc, argv);
  JsonRecords records;
  const Index n0 = 1024 * env_scale();
  const Index d0 = 4;
  const Index r = 32; // phi = d0 / r = 1/8, as in the paper
  const std::vector<int> node_counts{1, 4, 16, 64};

  std::printf("Figure 4: weak scaling, modeled time for %d FusedMM calls\n"
              "(simulation scale n0 = %lld, r = %lld, phi = 1/8; paper "
              "scale n0 = 2^16, r = 256)\n",
              kPaperCalls, static_cast<long long>(n0),
              static_cast<long long>(r));

  run_setup("Setup 1: n = n0 * p, nnz/row fixed (phi constant)", "setup1",
            node_counts,
            [&](int p) {
              return make_er_workload(n0 * p, d0, r,
                                      /*seed=*/100 + static_cast<unsigned>(p));
            },
            records);

  run_setup(
      "Setup 2: n = n0 * sqrt(p), nnz/row = d0 * sqrt(p) (phi doubles)",
      "setup2", node_counts,
      [&](int p) {
        const auto root = static_cast<Index>(std::lround(std::sqrt(p)));
        return make_er_workload(n0 * root, d0 * root, r,
                                /*seed=*/200 + static_cast<unsigned>(p));
      },
      records);

  std::printf(
      "\nPaper checks:\n"
      "  * Setup 1: sparse-shifting 1.5D is best overall (phi = 1/8 is "
      "low); communication grows ~sqrt(p) for 1.5D, ~p^(1/3) for 2.5D.\n"
      "  * Setup 2: ranking inverts — dense shift with local fusion wins "
      "at scale, sparse shift degrades as phi doubles.\n"
      "  * Eliding variants beat their no-elision counterparts nearly "
      "everywhere.\n");
  return finish_records(records, out_path);
}
