/// Local (shared-memory) kernel microbenchmarks — the Section III-A
/// substrate: CSR SDDMM, SpMM in both orientations, and the fused
/// FusedMM kernel that local kernel fusion relies on, serial and with
/// the thread pool. The interesting ratio is fused vs (SDDMM + SpMM):
/// fusion halves the passes over the sparse structure and skips the
/// intermediate store, which is the shared-memory benefit Rahman et al.
/// [11] report.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "local/fused.hpp"
#include "local/sddmm.hpp"
#include "local/spmm.hpp"
#include "local/thread_pool.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"

namespace {

using namespace dsk;

struct Instance {
  CsrMatrix s;
  DenseMatrix a;
  DenseMatrix b;
};

Instance make_instance(Index n, Index nnz_per_row, Index r) {
  Rng rng(1234);
  Instance inst{coo_to_csr(erdos_renyi_fixed_row(n, n, nnz_per_row, rng)),
                DenseMatrix(n, r), DenseMatrix(n, r)};
  inst.a.fill_random(rng);
  inst.b.fill_random(rng);
  return inst;
}

void args_grid(benchmark::internal::Benchmark* b) {
  b->Args({1 << 12, 8, 32})->Args({1 << 13, 16, 64})->Args({1 << 14, 8, 128});
}

void BM_Sddmm(benchmark::State& state) {
  const auto inst = make_instance(state.range(0), state.range(1),
                                  state.range(2));
  std::vector<Scalar> dots(static_cast<std::size_t>(inst.s.nnz()));
  for (auto _ : state) {
    std::fill(dots.begin(), dots.end(), Scalar{0});
    masked_dot_products(inst.s, inst.a, inst.b, dots);
    benchmark::DoNotOptimize(dots.data());
  }
  state.SetItemsProcessed(state.iterations() * inst.s.nnz());
}
BENCHMARK(BM_Sddmm)->Apply(args_grid);

void BM_SpmmA(benchmark::State& state) {
  const auto inst = make_instance(state.range(0), state.range(1),
                                  state.range(2));
  DenseMatrix out(inst.s.rows(), inst.b.cols());
  for (auto _ : state) {
    out.fill(0);
    spmm_a(inst.s, inst.b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * inst.s.nnz());
}
BENCHMARK(BM_SpmmA)->Apply(args_grid);

void BM_SpmmB(benchmark::State& state) {
  const auto inst = make_instance(state.range(0), state.range(1),
                                  state.range(2));
  DenseMatrix out(inst.s.cols(), inst.a.cols());
  for (auto _ : state) {
    out.fill(0);
    spmm_b(inst.s, inst.a, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * inst.s.nnz());
}
BENCHMARK(BM_SpmmB)->Apply(args_grid);

void BM_FusedTwoStep(benchmark::State& state) {
  // Unfused local FusedMM: SDDMM materializes R, then SpMMA consumes it.
  const auto inst = make_instance(state.range(0), state.range(1),
                                  state.range(2));
  DenseMatrix out(inst.s.rows(), inst.b.cols());
  for (auto _ : state) {
    out.fill(0);
    const CsrMatrix r = sddmm(inst.s, inst.a, inst.b);
    spmm_a(r, inst.b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * inst.s.nnz());
}
BENCHMARK(BM_FusedTwoStep)->Apply(args_grid);

void BM_FusedKernel(benchmark::State& state) {
  // The fused local kernel: no intermediate R, one pass.
  const auto inst = make_instance(state.range(0), state.range(1),
                                  state.range(2));
  DenseMatrix out(inst.s.rows(), inst.b.cols());
  for (auto _ : state) {
    out.fill(0);
    fusedmm_a(inst.s, inst.a, inst.b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * inst.s.nnz());
}
BENCHMARK(BM_FusedKernel)->Apply(args_grid);

void BM_SpmmAThreaded(benchmark::State& state) {
  const auto inst = make_instance(1 << 14, 8, 128);
  ThreadPool pool(static_cast<int>(state.range(0)));
  DenseMatrix out(inst.s.rows(), inst.b.cols());
  for (auto _ : state) {
    out.fill(0);
    spmm_a(inst.s, inst.b, out, &pool);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * inst.s.nnz());
}
BENCHMARK(BM_SpmmAThreaded)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
