/// Local (shared-memory) kernel microbenchmarks — the Section III-A
/// substrate: CSR SDDMM, SpMM in both orientations, and the fused
/// FusedMM kernel. Each kernel is measured in three implementations on a
/// power-law (R-MAT) matrix:
///
///   seed      — the seed repo's kernels: generic scalar inner loop,
///               equal-*row* thread partitioning, serial SpMM-B
///               (replicated here verbatim as the baseline)
///   tuned     — the current library kernels: nnz-balanced scheduling,
///               width-specialized (r in {32,64,128}) inner loops,
///               parallel SpMM-B with private scatter buffers
///
/// Results are printed as a table and written as a flat JSON array
/// (default BENCH_local_kernels.json) with one record per measurement:
/// kernel, impl, n, nnz, r, threads, seconds, gflops — the repo's
/// perf-trajectory format.
///
/// Usage: bench_local_kernels [--n N] [--edges-per-row E]
///                            [--out PATH] [--quick]

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "local/fused.hpp"
#include "local/schedule.hpp"
#include "local/sddmm.hpp"
#include "local/spmm.hpp"
#include "local/thread_pool.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"

namespace {

using namespace dsk;

// ------------------------------------------------------------------
// Seed-kernel replicas: the exact inner loops and scheduling the repo
// shipped with, kept here as the fixed baseline the tuned kernels are
// measured against.

void seed_spmm_a_rows(const CsrMatrix& s, const DenseMatrix& b,
                      DenseMatrix& a_out, Index row_begin, Index row_end) {
  const auto row_ptr = s.row_ptr();
  const auto col_idx = s.col_idx();
  const auto values = s.values();
  const Index r = b.cols();
  for (Index i = row_begin; i < row_end; ++i) {
    auto acc = a_out.row(i);
    for (Index k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const Scalar v = values[static_cast<std::size_t>(k)];
      const auto b_row = b.row(col_idx[static_cast<std::size_t>(k)]);
      for (Index f = 0; f < r; ++f) {
        acc[static_cast<std::size_t>(f)] +=
            v * b_row[static_cast<std::size_t>(f)];
      }
    }
  }
}

void seed_spmm_a(const CsrMatrix& s, const DenseMatrix& b,
                 DenseMatrix& a_out, ThreadPool* pool) {
  if (pool != nullptr) {
    // Seed scheduling: equal row counts per thread.
    pool->parallel_for(0, s.rows(), [&](Index begin, Index end) {
      seed_spmm_a_rows(s, b, a_out, begin, end);
    });
  } else {
    seed_spmm_a_rows(s, b, a_out, 0, s.rows());
  }
}

void seed_spmm_b(const CsrMatrix& s, const DenseMatrix& a,
                 DenseMatrix& b_out) {
  const auto row_ptr = s.row_ptr();
  const auto col_idx = s.col_idx();
  const auto values = s.values();
  const Index r = a.cols();
  for (Index i = 0; i < s.rows(); ++i) {
    const auto a_row = a.row(i);
    for (Index k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const Scalar v = values[static_cast<std::size_t>(k)];
      auto acc = b_out.row(col_idx[static_cast<std::size_t>(k)]);
      for (Index f = 0; f < r; ++f) {
        acc[static_cast<std::size_t>(f)] +=
            v * a_row[static_cast<std::size_t>(f)];
      }
    }
  }
}

void seed_sddmm_rows(const CsrMatrix& pattern, const DenseMatrix& a,
                     const DenseMatrix& b, std::span<Scalar> dots,
                     Index row_begin, Index row_end) {
  const auto row_ptr = pattern.row_ptr();
  const auto col_idx = pattern.col_idx();
  const Index r = a.cols();
  for (Index i = row_begin; i < row_end; ++i) {
    const auto a_row = a.row(i);
    for (Index k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto b_row = b.row(col_idx[static_cast<std::size_t>(k)]);
      Scalar dot = 0;
      for (Index f = 0; f < r; ++f) {
        dot += a_row[static_cast<std::size_t>(f)] *
               b_row[static_cast<std::size_t>(f)];
      }
      dots[static_cast<std::size_t>(k)] += dot;
    }
  }
}

void seed_sddmm(const CsrMatrix& pattern, const DenseMatrix& a,
                const DenseMatrix& b, std::span<Scalar> dots,
                ThreadPool* pool) {
  if (pool != nullptr) {
    pool->parallel_for(0, pattern.rows(), [&](Index begin, Index end) {
      seed_sddmm_rows(pattern, a, b, dots, begin, end);
    });
  } else {
    seed_sddmm_rows(pattern, a, b, dots, 0, pattern.rows());
  }
}

void seed_fused_rows(const CsrMatrix& s, const DenseMatrix& a_in,
                     const DenseMatrix& b, DenseMatrix& a_out,
                     Index row_begin, Index row_end) {
  const auto row_ptr = s.row_ptr();
  const auto col_idx = s.col_idx();
  const auto values = s.values();
  const Index r = b.cols();
  for (Index i = row_begin; i < row_end; ++i) {
    const auto a_row = a_in.row(i);
    auto acc = a_out.row(i);
    for (Index k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto b_row = b.row(col_idx[static_cast<std::size_t>(k)]);
      Scalar dot = 0;
      for (Index f = 0; f < r; ++f) {
        dot += a_row[static_cast<std::size_t>(f)] *
               b_row[static_cast<std::size_t>(f)];
      }
      const Scalar weight = values[static_cast<std::size_t>(k)] * dot;
      for (Index f = 0; f < r; ++f) {
        acc[static_cast<std::size_t>(f)] +=
            weight * b_row[static_cast<std::size_t>(f)];
      }
    }
  }
}

void seed_fusedmm_a(const CsrMatrix& s, const DenseMatrix& a_in,
                    const DenseMatrix& b, DenseMatrix& a_out,
                    ThreadPool* pool) {
  if (pool != nullptr) {
    pool->parallel_for(0, s.rows(), [&](Index begin, Index end) {
      seed_fused_rows(s, a_in, b, a_out, begin, end);
    });
  } else {
    seed_fused_rows(s, a_in, b, a_out, 0, s.rows());
  }
}

// ------------------------------------------------------------------
// Harness.

struct Options {
  Index n = Index{1} << 16;
  Index edges_per_row = 18;
  std::string out = "BENCH_local_kernels.json";
  bool quick = false; // smaller instance, fewer repetitions (CI smoke)
};

struct Instance {
  CsrMatrix s;
  DenseMatrix a;
  DenseMatrix b;
};

Instance make_instance(Index n, Index edges_per_row, Index r) {
  Rng rng(1234);
  Instance inst{coo_to_csr(rmat(n, n, n * edges_per_row, rng)),
                DenseMatrix(n, r), DenseMatrix(n, r)};
  inst.a.fill_random(rng);
  inst.b.fill_random(rng);
  return inst;
}

/// Best-of-k wall time of fn (after one warmup call), where k grows
/// until min_total seconds have been spent or max_iters is reached.
template <typename Fn>
double measure_seconds(const Fn& fn, double min_total, int max_iters) {
  fn(); // warmup
  double best = 1e300;
  double spent = 0;
  for (int i = 0; i < max_iters && (i < 2 || spent < min_total); ++i) {
    Timer t;
    fn();
    const double s = t.seconds();
    best = std::min(best, s);
    spent += s;
  }
  return best;
}

struct Harness {
  bench::JsonRecords records;
  double min_total;
  int max_iters;

  void report(const std::string& kernel, const std::string& impl,
              const Instance& inst, Index r, int threads, double seconds,
              std::uint64_t flops) {
    const double gflops = static_cast<double>(flops) / seconds * 1e-9;
    records.add()
        .field("kernel", kernel)
        .field("impl", impl)
        .field("n", static_cast<std::int64_t>(inst.s.rows()))
        .field("nnz", static_cast<std::int64_t>(inst.s.nnz()))
        .field("r", static_cast<std::int64_t>(r))
        .field("threads", threads)
        .field("seconds", seconds)
        .field("gflops", gflops);
    std::printf("%-10s %-6s r=%-4lld threads=%d  %8.4fs  %7.2f GFLOP/s\n",
                kernel.c_str(), impl.c_str(),
                static_cast<long long>(r), threads, seconds, gflops);
  }

  template <typename Fn>
  void run(const std::string& kernel, const std::string& impl,
           const Instance& inst, Index r, int threads,
           std::uint64_t flops, const Fn& fn) {
    report(kernel, impl, inst, r, threads,
           measure_seconds(fn, min_total, max_iters), flops);
  }
};

/// Partition quality: max part nnz over the mean (1.0 = perfectly
/// balanced). This is the thread-count-independent predictor of parallel
/// kernel speedup — wall-clock scaling itself needs real cores, which CI
/// containers may not have, so the imbalance ratio is recorded alongside
/// the timings.
double imbalance(const CsrMatrix& s, std::span<const Index> bounds) {
  const auto row_ptr = s.row_ptr();
  const auto parts = static_cast<int>(bounds.size()) - 1;
  Index max_part = 0;
  for (int p = 0; p < parts; ++p) {
    max_part = std::max(
        max_part,
        row_ptr[static_cast<std::size_t>(bounds[static_cast<std::size_t>(p) +
                                                1])] -
            row_ptr[static_cast<std::size_t>(
                bounds[static_cast<std::size_t>(p)])]);
  }
  return s.nnz() > 0
             ? static_cast<double>(max_part) * parts /
                   static_cast<double>(s.nnz())
             : 1.0;
}

void bench_partition_quality(Harness& h, const Instance& inst,
                             const std::vector<int>& thread_counts) {
  for (const int threads : thread_counts) {
    if (threads < 2) continue;
    const double seed_rows =
        imbalance(inst.s, partition_uniform(inst.s.rows(), threads));
    const double nnz_balanced =
        imbalance(inst.s, partition_rows_by_nnz(inst.s.row_ptr(), threads));
    h.records.add()
        .field("kernel", "partition")
        .field("impl", "seed")
        .field("n", static_cast<std::int64_t>(inst.s.rows()))
        .field("nnz", static_cast<std::int64_t>(inst.s.nnz()))
        .field("threads", threads)
        .field("imbalance", seed_rows);
    h.records.add()
        .field("kernel", "partition")
        .field("impl", "tuned")
        .field("n", static_cast<std::int64_t>(inst.s.rows()))
        .field("nnz", static_cast<std::int64_t>(inst.s.nnz()))
        .field("threads", threads)
        .field("imbalance", nnz_balanced);
    std::printf("partition  threads=%d  equal-rows imbalance %.2fx, "
                "nnz-balanced %.3fx\n",
                threads, seed_rows, nnz_balanced);
  }
}

void bench_width(Harness& h, const Options& opt, Index r,
                 const std::vector<int>& thread_counts) {
  const Instance inst = make_instance(opt.quick ? opt.n / 8 : opt.n,
                                      opt.edges_per_row, r);
  if (r == 32) bench_partition_quality(h, inst, thread_counts);
  const auto nnz = static_cast<std::uint64_t>(inst.s.nnz());
  const std::uint64_t flops2 = 2 * nnz * static_cast<std::uint64_t>(r);
  const std::uint64_t flops4 = 2 * flops2;
  std::printf("\n-- power-law n=%lld nnz=%llu r=%lld --\n",
              static_cast<long long>(inst.s.rows()),
              static_cast<unsigned long long>(nnz),
              static_cast<long long>(r));

  DenseMatrix a_out(inst.s.rows(), r);
  DenseMatrix b_out(inst.s.cols(), r);
  std::vector<Scalar> dots(static_cast<std::size_t>(inst.s.nnz()));

  // Serial baselines (seed had no parallel SpMM-B at all).
  h.run("spmm_a", "seed", inst, r, 1, flops2, [&] {
    a_out.fill(0);
    seed_spmm_a(inst.s, inst.b, a_out, nullptr);
  });
  h.run("spmm_b", "seed", inst, r, 1, flops2, [&] {
    b_out.fill(0);
    seed_spmm_b(inst.s, inst.a, b_out);
  });
  h.run("sddmm", "seed", inst, r, 1, flops2, [&] {
    std::fill(dots.begin(), dots.end(), Scalar{0});
    seed_sddmm(inst.s, inst.a, inst.b, dots, nullptr);
  });
  h.run("fusedmm_a", "seed", inst, r, 1, flops4, [&] {
    a_out.fill(0);
    seed_fusedmm_a(inst.s, inst.a, inst.b, a_out, nullptr);
  });

  for (const int threads : thread_counts) {
    ThreadPool pool(threads);
    ThreadPool* p = &pool;

    // Seed scheduling (equal rows) at this thread count.
    h.run("spmm_a", "seed", inst, r, threads, flops2, [&] {
      a_out.fill(0);
      seed_spmm_a(inst.s, inst.b, a_out, p);
    });
    h.run("sddmm", "seed", inst, r, threads, flops2, [&] {
      std::fill(dots.begin(), dots.end(), Scalar{0});
      seed_sddmm(inst.s, inst.a, inst.b, dots, p);
    });
    h.run("fusedmm_a", "seed", inst, r, threads, flops4, [&] {
      a_out.fill(0);
      seed_fusedmm_a(inst.s, inst.a, inst.b, a_out, p);
    });

    // Tuned: nnz-balanced + width-specialized (+ parallel SpMM-B).
    h.run("spmm_a", "tuned", inst, r, threads, flops2, [&] {
      a_out.fill(0);
      spmm_a(inst.s, inst.b, a_out, p);
    });
    h.run("spmm_b", "tuned", inst, r, threads, flops2, [&] {
      b_out.fill(0);
      spmm_b(inst.s, inst.a, b_out, p);
    });
    h.run("sddmm", "tuned", inst, r, threads, flops2, [&] {
      std::fill(dots.begin(), dots.end(), Scalar{0});
      masked_dot_products(inst.s, inst.a, inst.b, dots, p);
    });
    h.run("fusedmm_a", "tuned", inst, r, threads, flops4, [&] {
      a_out.fill(0);
      fusedmm_a(inst.s, inst.a, inst.b, a_out, p);
    });
  }
}

} // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--n") == 0) {
      opt.n = std::atoll(next());
    } else if (std::strcmp(argv[i], "--edges-per-row") == 0) {
      opt.edges_per_row = std::atoll(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opt.out = next();
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--edges-per-row E] [--out PATH] "
                   "[--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  Harness h;
  h.min_total = opt.quick ? 0.05 : 0.5;
  h.max_iters = opt.quick ? 3 : 10;
  const std::vector<int> thread_counts = opt.quick ? std::vector<int>{2}
                                                   : std::vector<int>{1, 2,
                                                                      4, 8};
  for (const Index r : {Index{32}, Index{64}, Index{128}}) {
    bench_width(h, opt, r, thread_counts);
  }
  if (!h.records.write(opt.out)) {
    std::fprintf(stderr, "error: could not write %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", opt.out.c_str());
  return 0;
}
