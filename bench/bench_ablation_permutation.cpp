/// Ablation: random-permutation load balancing (paper Section VI: "To
/// load balance among the processors, we randomly permute the rows and
/// columns of sparse matrices that we read in"). Sparsity-agnostic
/// algorithms partition by position, so a power-law matrix with
/// clustered hubs (R-MAT's natural vertex order) makes some blocks far
/// heavier than others; because the runtime reports the MAX over ranks
/// (the straggler), imbalance directly inflates communication and
/// computation time for the algorithms that move nnz-proportional data.
///
/// This bench measures the sparse-shifting FusedMM with and without the
/// random permutation and reports block-imbalance and modeled-time
/// ratios — the quantitative case for the paper's design choice.

#include "bench_common.hpp"
#include "sparse/permute.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

/// Max/mean nonzero count over the p column blocks of the 1.5D
/// sparse-shifting distribution.
double block_imbalance(const CooMatrix& s, int p) {
  const Index block = s.cols() / p;
  std::vector<Index> counts(static_cast<std::size_t>(p), 0);
  for (const Index j : s.col_idx()) {
    counts[static_cast<std::size_t>(j / block)]++;
  }
  Index max_count = 0;
  for (const Index c : counts) max_count = std::max(max_count, c);
  return static_cast<double>(max_count) * p /
         static_cast<double>(s.nnz());
}

} // namespace

int main() {
  print_header("Ablation: random permutation load balancing "
               "(paper Section VI)");

  const Index n = 16384 * env_scale();
  const Index d = 8;
  const Index r = 32;
  const int p = 16, c = 4;

  Rng rng(777);
  // R-MAT in natural vertex order: hubs cluster in the low indices.
  const auto raw = rmat(n, n, n * d, rng);
  const auto permuted = random_permute(raw, rng);

  DenseMatrix a(n, r), b(n, r);
  a.fill_random(rng);
  b.fill_random(rng);

  std::printf("R-MAT n = %lld, nnz = %lld, p = %d, c = %d\n\n",
              static_cast<long long>(n), static_cast<long long>(raw.nnz()),
              p, c);
  std::printf("%-22s %18s %18s\n", "", "natural order", "random permuted");
  std::printf("%-22s %18.2f %18.2f\n", "block nnz max/mean",
              block_imbalance(raw, p), block_imbalance(permuted.matrix, p));

  auto algo = make_algorithm(AlgorithmKind::SparseShift15D, p, c);
  const auto m = machine();
  const auto run_raw = algo->run_fusedmm(FusedOrientation::A,
                                         Elision::ReplicationReuse, raw, a,
                                         b);
  const auto run_perm = algo->run_fusedmm(FusedOrientation::A,
                                          Elision::ReplicationReuse,
                                          permuted.matrix, a, b);

  const double comm_raw = run_raw.stats.modeled_comm_seconds(m);
  const double comm_perm = run_perm.stats.modeled_comm_seconds(m);
  const double comp_raw =
      run_raw.stats.modeled_phase_seconds(Phase::Computation, m);
  const double comp_perm =
      run_perm.stats.modeled_phase_seconds(Phase::Computation, m);
  std::printf("%-22s %16.4fms %16.4fms\n", "comm time (straggler)",
              1e3 * comm_raw, 1e3 * comm_perm);
  std::printf("%-22s %16.4fms %16.4fms\n", "comp time (straggler)",
              1e3 * comp_raw, 1e3 * comp_perm);
  std::printf("\npermutation speedup: comm %.2fx, comp %.2fx\n",
              comm_raw / comm_perm, comp_raw / comp_perm);
  std::printf("Paper check: the random permutation flattens the "
              "straggler, which is why every experiment applies it "
              "before distribution.\n");
  return 0;
}
