/// Figure 6 reproduction: the predicted and observed best algorithm over
/// a grid of embedding widths r and sparse-matrix densities (nnz per
/// row) at fixed p. The paper's claim: the winner is always a 1.5D
/// algorithm, with the sparse-shifting variant above the
/// 3*nnz(S)/r ~ n curve (low phi) and dense shifting with local kernel
/// fusion below it (high phi).
///
/// Scale: p = 32 as the paper; m = 2^13 instead of 2^22 and the (r, d)
/// grid scaled by 8 so that the phi range [0.05, 2.6] matches Figure 6.

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

char variant_symbol(AlgorithmKind kind, Elision elision) {
  if (kind == AlgorithmKind::SparseShift15D) return 'S';
  if (kind == AlgorithmKind::DenseShift15D) {
    return elision == Elision::LocalKernelFusion ? 'D' : 'd';
  }
  if (kind == AlgorithmKind::DenseRepl25D) return '2';
  if (kind == AlgorithmKind::SparseRepl25D) return 'z';
  return '?';
}

} // namespace

int main() {
  const int p = 32;
  const int c_max = 8; // the paper's memory cap on replication
  const Index n = 8192 * env_scale();
  const std::vector<Index> widths{8, 16, 24, 32, 40, 48, 56};
  const std::vector<Index> densities{3, 6, 9, 12, 15, 18, 21};

  std::printf("Figure 6: best algorithm map at p = %d, n = %lld\n"
              "legend: S = 1.5D sparse shift + repl reuse, D = 1.5D dense "
              "shift + local fusion,\n        d = 1.5D dense shift + repl "
              "reuse, 2 = 2.5D dense repl, z = 2.5D sparse repl\n",
              p, static_cast<long long>(n));

  // Predicted panel (Table III model at best admissible c).
  print_header("Predicted");
  std::printf("%8s", "d \\ r");
  for (const Index r : widths) std::printf(" %4lld", static_cast<long long>(r));
  std::printf("\n");
  for (auto it = densities.rbegin(); it != densities.rend(); ++it) {
    std::printf("%8lld", static_cast<long long>(*it));
    for (const Index r : widths) {
      const CostInputs in{static_cast<double>(n), static_cast<double>(n),
                          static_cast<double>(r),
                          static_cast<double>(*it * n), p, 1};
      const auto best = predict_best(in, c_max);
      std::printf(" %4c", variant_symbol(best.kind, best.elision));
    }
    std::printf("\n");
  }

  // Observed panel: run each contender at its model-best admissible c
  // and report the measured-fastest.
  print_header("Observed (simulated)");
  int agree = 0, total = 0;
  std::printf("%8s", "d \\ r");
  for (const Index r : widths) std::printf(" %4lld", static_cast<long long>(r));
  std::printf("\n");
  for (auto it = densities.rbegin(); it != densities.rend(); ++it) {
    std::printf("%8lld", static_cast<long long>(*it));
    for (const Index r : widths) {
      const auto w = make_er_workload(
          n, *it, r,
          /*seed=*/static_cast<std::uint64_t>(1000 + *it * 100 + r));
      char best_symbol = '?';
      double best_time = -1;
      for (const auto& [kind, elision] : default_contenders()) {
        const auto outcome = best_over_c(kind, elision, p, w, c_max);
        if (outcome.total_seconds < 0) continue;
        if (best_time < 0 || outcome.total_seconds < best_time) {
          best_time = outcome.total_seconds;
          best_symbol = variant_symbol(kind, elision);
        }
      }
      const CostInputs in{static_cast<double>(n), static_cast<double>(n),
                          static_cast<double>(r),
                          static_cast<double>(w.s.nnz()), p, 1};
      const auto predicted = predict_best(in, c_max);
      agree += best_symbol == variant_symbol(predicted.kind,
                                             predicted.elision);
      ++total;
      std::printf(" %4c", best_symbol);
    }
    std::printf("\n");
  }

  std::printf("\npredicted == observed in %d / %d cells (%.0f%%)\n", agree,
              total, 100.0 * agree / total);
  std::printf("Paper check: a 1.5D algorithm wins every cell; sparse "
              "shift above the 3*nnz/r = n curve, dense shift below.\n");
  return 0;
}
