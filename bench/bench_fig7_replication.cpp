/// Figure 7 reproduction: predicted vs observed optimal replication
/// factors for the 1.5D dense-shifting algorithm across weak-scaling
/// setup 1, for the three eliding strategies. The paper's point: the
/// fused algorithms save communication by CHANGING the optimal
/// replication factor — reuse raises it (c* = sqrt(2p)), fusion lowers
/// it (c* = sqrt(p/2)) — not merely by dropping a phase.
///
/// Section 2 measures the SpComm3D-style replication collectives: for
/// each family with dense fiber collectives, max-per-rank replication
/// words under the Dense / SparseRows / Auto modes on a power-law
/// (R-MAT) instance. Section 3 measures the column-support PROPAGATION
/// collectives the same way: max-per-rank propagation words under the
/// Dense / SparseCols / Auto modes for every family with dense
/// circulating blocks. `--out <path>` writes every measurement as JSON
/// records for the perf-trajectory baseline (BENCH_replication.json);
/// the process exits nonzero if Auto ever moves more words than Dense
/// in either section, or if Auto propagation fails to show a STRICT
/// saving on the R-MAT instance for the compressible families, so CI
/// catches word regressions.

#include <cmath>

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

int observed_best_c(Elision elision, int p, const Workload& w, int c_max) {
  int best_c = 1;
  std::uint64_t best = 0;
  bool first = true;
  for (const int c :
       admissible_replication_factors(AlgorithmKind::DenseShift15D, p,
                                      c_max)) {
    if (c == p && p > 1) continue; // degenerate grid (see bench_common)
    const auto outcome = run_fusedmm_once(AlgorithmKind::DenseShift15D,
                                          elision, p, c, w);
    if (first || outcome.comm_words < best) {
      best = outcome.comm_words;
      best_c = c;
      first = false;
    }
  }
  return best_c;
}

std::uint64_t replication_words(AlgorithmKind kind, int p, int c,
                                const Workload& w, ReplicationMode mode) {
  AlgorithmOptions options;
  options.replication = mode;
  auto algo = make_algorithm(kind, p, c, options);
  const auto result = algo->run_fusedmm(FusedOrientation::A,
                                        Elision::None, w.s, w.a, w.b, 1);
  return result.stats.max_words(Phase::Replication);
}

/// Section 2: sparse vs dense replication collectives on a power-law
/// instance. Returns false if Auto ever moves more words than Dense.
bool run_mode_comparison(JsonRecords& records) {
  print_header("Replication collectives: dense vs sparse-rows (R-MAT)");
  const Index n = 512 * env_scale();
  const Index d = 4;
  const Index r = 32;
  const auto w = make_rmat_workload(n, d, r, /*seed=*/777);
  struct GridCase {
    AlgorithmKind kind;
    int p;
    int c;
  };
  const std::vector<GridCase> cases = {
      {AlgorithmKind::DenseShift15D, 16, 4},
      {AlgorithmKind::SparseShift15D, 16, 4},
      {AlgorithmKind::DenseRepl25D, 16, 4},
      {AlgorithmKind::SparseRepl25D, 16, 4},
  };
  std::printf("%-18s %4s %3s | %12s %12s %12s | %8s\n", "algorithm", "p",
              "c", "dense", "sparse-rows", "auto", "saving");
  bool auto_bounded = true;
  for (const auto& gc : cases) {
    std::uint64_t words[3] = {0, 0, 0};
    const ReplicationMode modes[] = {ReplicationMode::Dense,
                                     ReplicationMode::SparseRows,
                                     ReplicationMode::Auto};
    for (int i = 0; i < 3; ++i) {
      words[i] = replication_words(gc.kind, gc.p, gc.c, w, modes[i]);
      records.add()
          .field("bench", "fig7_replication")
          .field("setup", "rmat")
          .field("algorithm", to_string(gc.kind))
          .field("elision", to_string(Elision::None))
          .field("mode", to_string(modes[i]))
          .field("p", gc.p)
          .field("c", gc.c)
          .field("n", static_cast<std::int64_t>(w.s.rows()))
          .field("nnz", static_cast<std::int64_t>(w.s.nnz()))
          .field("r", static_cast<std::int64_t>(w.r))
          .field("replication_words", words[i]);
    }
    const double saving =
        words[0] > 0
            ? 100.0 * (1.0 - static_cast<double>(words[2]) / words[0])
            : 0.0;
    std::printf("%-18s %4d %3d | %12llu %12llu %12llu | %7.1f%%\n",
                to_string(gc.kind).c_str(), gc.p, gc.c,
                static_cast<unsigned long long>(words[0]),
                static_cast<unsigned long long>(words[1]),
                static_cast<unsigned long long>(words[2]), saving);
    auto_bounded &= words[2] <= words[0];
  }
  std::printf("\nInvariant: auto <= dense on every instance — %s.\n",
              auto_bounded ? "HOLDS" : "VIOLATED");
  return auto_bounded;
}

std::uint64_t propagation_words(AlgorithmKind kind, int p, int c,
                                const Workload& w, PropagationMode mode) {
  AlgorithmOptions options;
  options.propagation = mode;
  auto algo = make_algorithm(kind, p, c, options);
  const auto result = algo->run_fusedmm(FusedOrientation::A,
                                        Elision::None, w.s, w.a, w.b, 1);
  return result.stats.max_words(Phase::Propagation);
}

/// Section 3: column-support propagation compression on the same
/// power-law instance. Returns false if Auto ever moves more
/// max-per-rank propagation words than Dense, or fails to STRICTLY
/// undercut Dense on the families with dense circulating blocks (the
/// homeward hop alone guarantees a saving whenever a ring is longer
/// than one).
bool run_propagation_comparison(JsonRecords& records) {
  print_header("Propagation collectives: dense vs sparse-cols (R-MAT)");
  const Index n = 512 * env_scale();
  const Index d = 4;
  const Index r = 32;
  const auto w = make_rmat_workload(n, d, r, /*seed=*/777);
  struct GridCase {
    AlgorithmKind kind;
    int p;
    int c;
    bool compressible; // dense circulating blocks to elide?
  };
  const std::vector<GridCase> cases = {
      {AlgorithmKind::DenseShift15D, 16, 4, true},
      {AlgorithmKind::SparseShift15D, 16, 4, false},
      {AlgorithmKind::DenseRepl25D, 16, 4, true},
      {AlgorithmKind::SparseRepl25D, 16, 4, true},
  };
  std::printf("%-18s %4s %3s | %12s %12s %12s | %8s\n", "algorithm", "p",
              "c", "dense", "sparse-cols", "auto", "saving");
  bool gates_hold = true;
  for (const auto& gc : cases) {
    std::uint64_t words[3] = {0, 0, 0};
    const PropagationMode modes[] = {PropagationMode::Dense,
                                     PropagationMode::SparseCols,
                                     PropagationMode::Auto};
    for (int i = 0; i < 3; ++i) {
      words[i] = propagation_words(gc.kind, gc.p, gc.c, w, modes[i]);
      records.add()
          .field("bench", "fig7_propagation")
          .field("setup", "rmat")
          .field("algorithm", to_string(gc.kind))
          .field("elision", to_string(Elision::None))
          .field("replication", to_string(ReplicationMode::Dense))
          .field("propagation", to_string(modes[i]))
          .field("p", gc.p)
          .field("c", gc.c)
          .field("n", static_cast<std::int64_t>(w.s.rows()))
          .field("nnz", static_cast<std::int64_t>(w.s.nnz()))
          .field("r", static_cast<std::int64_t>(w.r))
          .field("propagation_words", words[i]);
    }
    const double saving =
        words[0] > 0
            ? 100.0 * (1.0 - static_cast<double>(words[2]) / words[0])
            : 0.0;
    std::printf("%-18s %4d %3d | %12llu %12llu %12llu | %7.1f%%\n",
                to_string(gc.kind).c_str(), gc.p, gc.c,
                static_cast<unsigned long long>(words[0]),
                static_cast<unsigned long long>(words[1]),
                static_cast<unsigned long long>(words[2]), saving);
    gates_hold &= words[2] <= words[0];
    if (gc.compressible) gates_hold &= words[2] < words[0];
  }
  std::printf("\nInvariants: auto <= dense everywhere, auto < dense on "
              "the compressible families — %s.\n",
              gates_hold ? "HOLD" : "VIOLATED");
  return gates_hold;
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path = out_path_from_args(argc, argv);
  JsonRecords records;
  const Index n0 = 1024 * env_scale();
  const Index d0 = 4;
  const Index r = 32;
  const int c_max = 16; // the paper tested factors 1..16 (8 for weak)
  const std::vector<int> node_counts{2, 4, 8, 16, 32, 64};

  std::printf("Figure 7: optimal replication factor vs node count, 1.5D "
              "dense shifting (weak scaling setup 1)\n");
  std::printf("%6s | %9s %9s | %9s %9s | %9s %9s\n", "p", "none*", "none",
              "reuse*", "reuse", "fusion*", "fusion");
  std::printf("       (starred = closed-form prediction, unstarred = "
              "observed argmin of measured comm time)\n");

  bool ordering_holds = true;
  for (const int p : node_counts) {
    const auto w = make_er_workload(n0 * p, d0, r,
                                    /*seed=*/400 + static_cast<unsigned>(p));
    const double phi = phi_ratio(w.s, r);
    const double pred_none = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::None, p, phi);
    const double pred_reuse = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::ReplicationReuse, p, phi);
    const double pred_fusion = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::LocalKernelFusion, p, phi);
    const int obs_none = observed_best_c(Elision::None, p, w, c_max);
    const int obs_reuse =
        observed_best_c(Elision::ReplicationReuse, p, w, c_max);
    const int obs_fusion =
        observed_best_c(Elision::LocalKernelFusion, p, w, c_max);
    std::printf("%6d | %9.2f %9d | %9.2f %9d | %9.2f %9d\n", p, pred_none,
                obs_none, pred_reuse, obs_reuse, pred_fusion, obs_fusion);
    ordering_holds &= obs_reuse >= obs_none && obs_none >= obs_fusion;
    const struct {
      Elision elision;
      double predicted;
      int observed;
    } rows[] = {{Elision::None, pred_none, obs_none},
                {Elision::ReplicationReuse, pred_reuse, obs_reuse},
                {Elision::LocalKernelFusion, pred_fusion, obs_fusion}};
    for (const auto& row : rows) {
      records.add()
          .field("bench", "fig7_optimal_c")
          .field("setup", "weak1")
          .field("algorithm", to_string(AlgorithmKind::DenseShift15D))
          .field("elision", to_string(row.elision))
          .field("p", p)
          .field("n", static_cast<std::int64_t>(w.s.rows()))
          .field("nnz", static_cast<std::int64_t>(w.s.nnz()))
          .field("r", static_cast<std::int64_t>(r))
          .field("predicted_c", row.predicted)
          .field("observed_c", row.observed);
    }
  }

  std::printf("\nPaper check: c*(reuse) >= c*(none) >= c*(fusion) at every "
              "node count — %s.\n",
              ordering_holds ? "HOLDS" : "VIOLATED");

  const bool auto_bounded = run_mode_comparison(records);
  const bool propagation_bounded = run_propagation_comparison(records);
  const int write_status = finish_records(records, out_path);
  if (write_status != 0) return write_status;
  return auto_bounded && propagation_bounded ? 0 : 1;
}
