/// Figure 7 reproduction: predicted vs observed optimal replication
/// factors for the 1.5D dense-shifting algorithm across weak-scaling
/// setup 1, for the three eliding strategies. The paper's point: the
/// fused algorithms save communication by CHANGING the optimal
/// replication factor — reuse raises it (c* = sqrt(2p)), fusion lowers
/// it (c* = sqrt(p/2)) — not merely by dropping a phase.
///
/// Section 2 measures the SpComm3D-style replication collectives: for
/// each family with dense fiber collectives, max-per-rank replication
/// words under the Dense / SparseRows / Auto modes on a power-law
/// (R-MAT) instance. Section 3 measures the column-support PROPAGATION
/// collectives the same way: max-per-rank propagation words under the
/// Dense / SparseCols / Auto modes for every family with dense
/// circulating blocks. Section 4 sweeps the wire codecs
/// (runtime/wire.hpp): precision x index codec under the Auto
/// collectives, on the R-MAT instance and a near-dense one where only
/// header compression makes the sparse path pay. `--out <path>` writes
/// every measurement as JSON records for the perf-trajectory baseline
/// (BENCH_replication.json); the process exits nonzero if Auto ever
/// moves more words than Dense in sections 2-3, if Auto propagation
/// fails to show a STRICT saving on the R-MAT instance for the
/// compressible families, or if the Auto index codec ever moves more
/// words than raw-header Auto (or fails to strictly undercut it on a
/// near-dense instance), so CI catches word regressions.

#include <cmath>

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

int observed_best_c(Elision elision, int p, const Workload& w, int c_max) {
  int best_c = 1;
  std::uint64_t best = 0;
  bool first = true;
  for (const int c :
       admissible_replication_factors(AlgorithmKind::DenseShift15D, p,
                                      c_max)) {
    if (c == p && p > 1) continue; // degenerate grid (see bench_common)
    const auto outcome = run_fusedmm_once(AlgorithmKind::DenseShift15D,
                                          elision, p, c, w);
    if (first || outcome.comm_words < best) {
      best = outcome.comm_words;
      best_c = c;
      first = false;
    }
  }
  return best_c;
}

std::uint64_t replication_words(AlgorithmKind kind, int p, int c,
                                const Workload& w, ReplicationMode mode) {
  AlgorithmOptions options;
  options.replication = mode;
  auto algo = make_algorithm(kind, p, c, options);
  const auto result = algo->run_fusedmm(FusedOrientation::A,
                                        Elision::None, w.s, w.a, w.b, 1);
  return result.stats.max_words(Phase::Replication);
}

/// Section 2: sparse vs dense replication collectives on a power-law
/// instance. Returns false if Auto ever moves more words than Dense.
bool run_mode_comparison(JsonRecords& records) {
  print_header("Replication collectives: dense vs sparse-rows (R-MAT)");
  const Index n = 512 * env_scale();
  const Index d = 4;
  const Index r = 32;
  const auto w = make_rmat_workload(n, d, r, /*seed=*/777);
  struct GridCase {
    AlgorithmKind kind;
    int p;
    int c;
  };
  const std::vector<GridCase> cases = {
      {AlgorithmKind::DenseShift15D, 16, 4},
      {AlgorithmKind::SparseShift15D, 16, 4},
      {AlgorithmKind::DenseRepl25D, 16, 4},
      {AlgorithmKind::SparseRepl25D, 16, 4},
  };
  std::printf("%-18s %4s %3s | %12s %12s %12s | %8s\n", "algorithm", "p",
              "c", "dense", "sparse-rows", "auto", "saving");
  bool auto_bounded = true;
  for (const auto& gc : cases) {
    std::uint64_t words[3] = {0, 0, 0};
    const ReplicationMode modes[] = {ReplicationMode::Dense,
                                     ReplicationMode::SparseRows,
                                     ReplicationMode::Auto};
    for (int i = 0; i < 3; ++i) {
      words[i] = replication_words(gc.kind, gc.p, gc.c, w, modes[i]);
      records.add()
          .field("bench", "fig7_replication")
          .field("setup", "rmat")
          .field("algorithm", to_string(gc.kind))
          .field("elision", to_string(Elision::None))
          .field("mode", to_string(modes[i]))
          .field("p", gc.p)
          .field("c", gc.c)
          .field("n", static_cast<std::int64_t>(w.s.rows()))
          .field("nnz", static_cast<std::int64_t>(w.s.nnz()))
          .field("r", static_cast<std::int64_t>(w.r))
          .field("replication_words", words[i]);
    }
    const double saving =
        words[0] > 0
            ? 100.0 * (1.0 - static_cast<double>(words[2]) / words[0])
            : 0.0;
    std::printf("%-18s %4d %3d | %12llu %12llu %12llu | %7.1f%%\n",
                to_string(gc.kind).c_str(), gc.p, gc.c,
                static_cast<unsigned long long>(words[0]),
                static_cast<unsigned long long>(words[1]),
                static_cast<unsigned long long>(words[2]), saving);
    auto_bounded &= words[2] <= words[0];
  }
  std::printf("\nInvariant: auto <= dense on every instance — %s.\n",
              auto_bounded ? "HOLDS" : "VIOLATED");
  return auto_bounded;
}

std::uint64_t propagation_words(AlgorithmKind kind, int p, int c,
                                const Workload& w, PropagationMode mode) {
  AlgorithmOptions options;
  options.propagation = mode;
  auto algo = make_algorithm(kind, p, c, options);
  const auto result = algo->run_fusedmm(FusedOrientation::A,
                                        Elision::None, w.s, w.a, w.b, 1);
  return result.stats.max_words(Phase::Propagation);
}

/// Section 3: column-support propagation compression on the same
/// power-law instance. Returns false if Auto ever moves more
/// max-per-rank propagation words than Dense, or fails to STRICTLY
/// undercut Dense on the families with dense circulating blocks (the
/// homeward hop alone guarantees a saving whenever a ring is longer
/// than one).
bool run_propagation_comparison(JsonRecords& records) {
  print_header("Propagation collectives: dense vs sparse-cols (R-MAT)");
  const Index n = 512 * env_scale();
  const Index d = 4;
  const Index r = 32;
  const auto w = make_rmat_workload(n, d, r, /*seed=*/777);
  struct GridCase {
    AlgorithmKind kind;
    int p;
    int c;
    bool compressible; // dense circulating blocks to elide?
  };
  const std::vector<GridCase> cases = {
      {AlgorithmKind::DenseShift15D, 16, 4, true},
      {AlgorithmKind::SparseShift15D, 16, 4, false},
      {AlgorithmKind::DenseRepl25D, 16, 4, true},
      {AlgorithmKind::SparseRepl25D, 16, 4, true},
  };
  std::printf("%-18s %4s %3s | %12s %12s %12s | %8s\n", "algorithm", "p",
              "c", "dense", "sparse-cols", "auto", "saving");
  bool gates_hold = true;
  for (const auto& gc : cases) {
    std::uint64_t words[3] = {0, 0, 0};
    const PropagationMode modes[] = {PropagationMode::Dense,
                                     PropagationMode::SparseCols,
                                     PropagationMode::Auto};
    for (int i = 0; i < 3; ++i) {
      words[i] = propagation_words(gc.kind, gc.p, gc.c, w, modes[i]);
      records.add()
          .field("bench", "fig7_propagation")
          .field("setup", "rmat")
          .field("algorithm", to_string(gc.kind))
          .field("elision", to_string(Elision::None))
          .field("replication", to_string(ReplicationMode::Dense))
          .field("propagation", to_string(modes[i]))
          .field("p", gc.p)
          .field("c", gc.c)
          .field("n", static_cast<std::int64_t>(w.s.rows()))
          .field("nnz", static_cast<std::int64_t>(w.s.nnz()))
          .field("r", static_cast<std::int64_t>(w.r))
          .field("propagation_words", words[i]);
    }
    const double saving =
        words[0] > 0
            ? 100.0 * (1.0 - static_cast<double>(words[2]) / words[0])
            : 0.0;
    std::printf("%-18s %4d %3d | %12llu %12llu %12llu | %7.1f%%\n",
                to_string(gc.kind).c_str(), gc.p, gc.c,
                static_cast<unsigned long long>(words[0]),
                static_cast<unsigned long long>(words[1]),
                static_cast<unsigned long long>(words[2]), saving);
    gates_hold &= words[2] <= words[0];
    if (gc.compressible) gates_hold &= words[2] < words[0];
  }
  std::printf("\nInvariants: auto <= dense everywhere, auto < dense on "
              "the compressible families — %s.\n",
              gates_hold ? "HOLD" : "VIOLATED");
  return gates_hold;
}

/// Near-dense row support: every 64th row left EMPTY so each 64-row
/// fiber chunk supports exactly 63 of its 64 rows — inside the narrow
/// band where raw sparse headers price the row-sparse path out of Auto
/// (63*(r+1)+1 > 64*r at r=32) but compressed headers price it back in
/// (63*r + one bitmap word < 64*r).
Workload make_banded_support_workload(Index n, Index d, Index r,
                                      std::uint64_t seed) {
  Rng rng(seed);
  const CooMatrix full = erdos_renyi_fixed_row(n, n, d, rng);
  CooMatrix s(n, n);
  s.reserve(full.nnz());
  for (Index k = 0; k < full.nnz(); ++k) {
    const auto e = full.entry(k);
    if (e.row % 64 == 63) continue;
    s.push_back(e.row, e.col, e.value);
  }
  s.sort_and_combine();
  Workload w{std::move(s), DenseMatrix(n, r), DenseMatrix(n, r), r};
  w.a.fill_random(rng);
  w.b.fill_random(rng);
  return w;
}

std::uint64_t auto_comm_words(AlgorithmKind kind, int p, int c,
                              const Workload& w, const WireCodec& codec) {
  AlgorithmOptions options;
  options.replication = ReplicationMode::Auto;
  options.propagation = PropagationMode::Auto;
  options.wire_precision = codec.precision;
  options.index_codec = codec.index_codec;
  auto algo = make_algorithm(kind, p, c, options);
  const auto result = algo->run_fusedmm(FusedOrientation::A,
                                        Elision::None, w.s, w.a, w.b, 1);
  return result.stats.max_words(Phase::Replication) +
         result.stats.max_words(Phase::Propagation);
}

/// Section 4: wire codecs (runtime/wire.hpp) under the Auto collectives.
/// Sweeps precision x index codec on the power-law instance plus a
/// near-dense one where raw sparse headers price the row-sparse path
/// OUT of Auto (support ~ 0.98 rows: support*(r+1) > rows*r) but the
/// bitmap codec prices it back IN (support*r + rows/64 < rows*r).
/// Returns false unless Auto with the Auto index codec — still exact,
/// full-precision values — moves at most as many max-per-rank words as
/// today's raw-header Auto on EVERY instance, and strictly fewer on at
/// least one near-dense instance.
bool run_wire_comparison(JsonRecords& records) {
  print_header("Wire codecs: precision x index codec under Auto "
               "(R-MAT + near-dense)");
  const Index r = 32;
  struct Instance {
    const char* setup;
    Workload w;
  };
  const Index n_rmat = 512 * env_scale();
  const Index n_dense = 4096;
  const std::vector<Instance> instances = {
      {"rmat", make_rmat_workload(n_rmat, 4, r, /*seed=*/777)},
      {"near-dense", make_banded_support_workload(n_dense, 32, r,
                                                  /*seed=*/778)},
  };
  const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::DenseShift15D, AlgorithmKind::SparseShift15D,
      AlgorithmKind::DenseRepl25D, AlgorithmKind::SparseRepl25D};
  const WirePrecision precisions[] = {WirePrecision::Full,
                                      WirePrecision::F32,
                                      WirePrecision::BF16};
  const IndexCodec index_codecs[] = {IndexCodec::Raw,
                                     IndexCodec::DeltaVarint,
                                     IndexCodec::Bitmap, IndexCodec::Auto};
  const int p = 16;
  const int c = 4;
  bool never_worse = true;
  bool strict_win = false;
  std::printf("%-11s %-18s | %12s %12s | %8s\n", "setup", "algorithm",
              "raw auto", "codec auto", "saving");
  for (const auto& inst : instances) {
    for (const AlgorithmKind kind : kinds) {
      std::uint64_t baseline = 0;
      std::uint64_t codec_auto = 0;
      for (const WirePrecision precision : precisions) {
        for (const IndexCodec index_codec : index_codecs) {
          const WireCodec codec{precision, index_codec};
          const std::uint64_t words =
              auto_comm_words(kind, p, c, inst.w, codec);
          if (codec.is_default()) baseline = words;
          if (precision == WirePrecision::Full &&
              index_codec == IndexCodec::Auto) {
            codec_auto = words;
          }
          records.add()
              .field("bench", "fig7_wire")
              .field("setup", inst.setup)
              .field("algorithm", to_string(kind))
              .field("elision", to_string(Elision::None))
              .field("replication", to_string(ReplicationMode::Auto))
              .field("propagation", to_string(PropagationMode::Auto))
              .field("precision", to_string(precision))
              .field("index_codec", to_string(index_codec))
              .field("p", p)
              .field("c", c)
              .field("n", static_cast<std::int64_t>(inst.w.s.rows()))
              .field("nnz", static_cast<std::int64_t>(inst.w.s.nnz()))
              .field("r", static_cast<std::int64_t>(inst.w.r))
              .field("wire_words", words);
        }
      }
      const double saving =
          baseline > 0
              ? 100.0 * (1.0 - static_cast<double>(codec_auto) / baseline)
              : 0.0;
      std::printf("%-11s %-18s | %12llu %12llu | %7.1f%%\n", inst.setup,
                  to_string(kind).c_str(),
                  static_cast<unsigned long long>(baseline),
                  static_cast<unsigned long long>(codec_auto), saving);
      never_worse &= codec_auto <= baseline;
      if (std::string(inst.setup) == "near-dense") {
        strict_win |= codec_auto < baseline;
      }
    }
  }
  std::printf("\nInvariants: codec-auto <= raw-auto on every instance "
              "— %s; strictly fewer words on a near-dense instance — "
              "%s.\n",
              never_worse ? "HOLDS" : "VIOLATED",
              strict_win ? "HOLDS" : "VIOLATED");
  return never_worse && strict_win;
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path = out_path_from_args(argc, argv);
  JsonRecords records;
  const Index n0 = 1024 * env_scale();
  const Index d0 = 4;
  const Index r = 32;
  const int c_max = 16; // the paper tested factors 1..16 (8 for weak)
  const std::vector<int> node_counts{2, 4, 8, 16, 32, 64};

  std::printf("Figure 7: optimal replication factor vs node count, 1.5D "
              "dense shifting (weak scaling setup 1)\n");
  std::printf("%6s | %9s %9s | %9s %9s | %9s %9s\n", "p", "none*", "none",
              "reuse*", "reuse", "fusion*", "fusion");
  std::printf("       (starred = closed-form prediction, unstarred = "
              "observed argmin of measured comm time)\n");

  bool ordering_holds = true;
  for (const int p : node_counts) {
    const auto w = make_er_workload(n0 * p, d0, r,
                                    /*seed=*/400 + static_cast<unsigned>(p));
    const double phi = phi_ratio(w.s, r);
    const double pred_none = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::None, p, phi);
    const double pred_reuse = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::ReplicationReuse, p, phi);
    const double pred_fusion = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::LocalKernelFusion, p, phi);
    const int obs_none = observed_best_c(Elision::None, p, w, c_max);
    const int obs_reuse =
        observed_best_c(Elision::ReplicationReuse, p, w, c_max);
    const int obs_fusion =
        observed_best_c(Elision::LocalKernelFusion, p, w, c_max);
    std::printf("%6d | %9.2f %9d | %9.2f %9d | %9.2f %9d\n", p, pred_none,
                obs_none, pred_reuse, obs_reuse, pred_fusion, obs_fusion);
    ordering_holds &= obs_reuse >= obs_none && obs_none >= obs_fusion;
    const struct {
      Elision elision;
      double predicted;
      int observed;
    } rows[] = {{Elision::None, pred_none, obs_none},
                {Elision::ReplicationReuse, pred_reuse, obs_reuse},
                {Elision::LocalKernelFusion, pred_fusion, obs_fusion}};
    for (const auto& row : rows) {
      records.add()
          .field("bench", "fig7_optimal_c")
          .field("setup", "weak1")
          .field("algorithm", to_string(AlgorithmKind::DenseShift15D))
          .field("elision", to_string(row.elision))
          .field("p", p)
          .field("n", static_cast<std::int64_t>(w.s.rows()))
          .field("nnz", static_cast<std::int64_t>(w.s.nnz()))
          .field("r", static_cast<std::int64_t>(r))
          .field("predicted_c", row.predicted)
          .field("observed_c", row.observed);
    }
  }

  std::printf("\nPaper check: c*(reuse) >= c*(none) >= c*(fusion) at every "
              "node count — %s.\n",
              ordering_holds ? "HOLDS" : "VIOLATED");

  const bool auto_bounded = run_mode_comparison(records);
  const bool propagation_bounded = run_propagation_comparison(records);
  const bool wire_bounded = run_wire_comparison(records);
  const int write_status = finish_records(records, out_path);
  if (write_status != 0) return write_status;
  return auto_bounded && propagation_bounded && wire_bounded ? 0 : 1;
}
