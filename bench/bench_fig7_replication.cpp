/// Figure 7 reproduction: predicted vs observed optimal replication
/// factors for the 1.5D dense-shifting algorithm across weak-scaling
/// setup 1, for the three eliding strategies. The paper's point: the
/// fused algorithms save communication by CHANGING the optimal
/// replication factor — reuse raises it (c* = sqrt(2p)), fusion lowers
/// it (c* = sqrt(p/2)) — not merely by dropping a phase.

#include <cmath>

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

int observed_best_c(Elision elision, int p, const Workload& w, int c_max) {
  int best_c = 1;
  std::uint64_t best = 0;
  bool first = true;
  for (const int c :
       admissible_replication_factors(AlgorithmKind::DenseShift15D, p,
                                      c_max)) {
    if (c == p && p > 1) continue; // degenerate grid (see bench_common)
    const auto outcome = run_fusedmm_once(AlgorithmKind::DenseShift15D,
                                          elision, p, c, w);
    if (first || outcome.comm_words < best) {
      best = outcome.comm_words;
      best_c = c;
      first = false;
    }
  }
  return best_c;
}

} // namespace

int main() {
  const Index n0 = 1024 * env_scale();
  const Index d0 = 4;
  const Index r = 32;
  const int c_max = 16; // the paper tested factors 1..16 (8 for weak)
  const std::vector<int> node_counts{2, 4, 8, 16, 32, 64};

  std::printf("Figure 7: optimal replication factor vs node count, 1.5D "
              "dense shifting (weak scaling setup 1)\n");
  std::printf("%6s | %9s %9s | %9s %9s | %9s %9s\n", "p", "none*", "none",
              "reuse*", "reuse", "fusion*", "fusion");
  std::printf("       (starred = closed-form prediction, unstarred = "
              "observed argmin of measured comm time)\n");

  bool ordering_holds = true;
  for (const int p : node_counts) {
    const auto w = make_er_workload(n0 * p, d0, r,
                                    /*seed=*/400 + static_cast<unsigned>(p));
    const double phi = phi_ratio(w.s, r);
    const double pred_none = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::None, p, phi);
    const double pred_reuse = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::ReplicationReuse, p, phi);
    const double pred_fusion = closed_form_optimal_c(
        AlgorithmKind::DenseShift15D, Elision::LocalKernelFusion, p, phi);
    const int obs_none = observed_best_c(Elision::None, p, w, c_max);
    const int obs_reuse =
        observed_best_c(Elision::ReplicationReuse, p, w, c_max);
    const int obs_fusion =
        observed_best_c(Elision::LocalKernelFusion, p, w, c_max);
    std::printf("%6d | %9.2f %9d | %9.2f %9d | %9.2f %9d\n", p, pred_none,
                obs_none, pred_reuse, obs_reuse, pred_fusion, obs_fusion);
    ordering_holds &= obs_reuse >= obs_none && obs_none >= obs_fusion;
  }

  std::printf("\nPaper check: c*(reuse) >= c*(none) >= c*(fusion) at every "
              "node count — %s.\n",
              ordering_holds ? "HOLDS" : "VIOLATED");
  return 0;
}
