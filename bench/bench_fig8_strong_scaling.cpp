/// Figure 8 / Table V reproduction: strong scaling on real-world-shaped
/// matrices against the PETSc-like 1D baseline. The SuiteSparse inputs
/// are not available offline, so each is replaced by a seeded R-MAT
/// generator matched in shape and scaled down ~2^7-2^9 in n. Because the
/// embedding width is also scaled (r = 32 instead of the paper's 128),
/// nnz-per-row is scaled by the same factor so that phi = nnz/(n r) —
/// the quantity that selects the winning algorithm — matches the real
/// matrix:
///
///   matrix (paper n, nnz, nnz/row)       phi(r=128)  stand-in (n, d)
///   amazon-large (14.2M, 231M, 16)          0.127     (32768,  4)
///   uk-2002      (18.5M, 298M, 16)          0.126     (32768,  4)
///   eukarya      ( 3.2M, 360M, 111)         0.867     ( 8192, 28)
///   arabic-2005  (22.7M, 640M, 28)          0.220     (32768,  7)
///   twitter7     (41.7M, 1.47B, 35)         0.275     (32768,  9)
///
/// Set DSK_MATRIX_DIR to a directory containing the actual SuiteSparse
/// .mtx files (amazon-large.mtx, uk-2002.mtx, ...) to benchmark the real
/// matrices instead. Reported: modeled time for 5 FusedMM calls at the
/// best replication factor (1..16), plus the baseline's two back-to-back
/// SpMM calls, exactly the paper's protocol.

#include <filesystem>

#include "bench_common.hpp"
#include "dist/problem.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/permute.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

/// When DSK_MATRIX_DIR holds <name>.mtx (the actual SuiteSparse file),
/// load it, randomly permute rows/columns for load balance (paper
/// Section VI), and zero-pad to the largest grid under test; otherwise
/// fall back to the R-MAT stand-in.
Workload load_or_generate(const char* name, Index sim_n, Index sim_d,
                          Index r, int max_p) {
  if (const char* dir = std::getenv("DSK_MATRIX_DIR"); dir != nullptr) {
    std::string base(name);
    if (const auto pos = base.find('('); pos != std::string::npos) {
      base = base.substr(0, pos);
    }
    const auto path = std::filesystem::path(dir) / (base + ".mtx");
    if (std::filesystem::exists(path)) {
      std::printf("loading real matrix %s\n", path.c_str());
      Rng rng(4242);
      auto permuted =
          random_permute(read_matrix_market_file(path.string()), rng);
      DenseMatrix a(permuted.matrix.rows(), r);
      DenseMatrix b(permuted.matrix.cols(), r);
      a.fill_random(rng);
      b.fill_random(rng);
      auto padded = pad_problem(AlgorithmKind::DenseRepl25D, max_p, 4,
                                permuted.matrix, a, b);
      return Workload{std::move(padded.s), std::move(padded.a),
                      std::move(padded.b), r};
    }
  }
  return make_rmat_workload(sim_n * env_scale(), sim_d, r,
                            std::hash<std::string>{}(name));
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path = out_path_from_args(argc, argv);
  JsonRecords records;
  struct MatrixSpec {
    const char* name;
    Index n;
    Index nnz_per_row;
  };
  const MatrixSpec specs[] = {
      {"amazon-large(sim)", 32768, 4},
      {"uk-2002(sim)", 32768, 4},
      {"eukarya(sim)", 8192, 28},
      {"arabic-2005(sim)", 32768, 7},
      {"twitter7(sim)", 32768, 9},
  };
  const Index r = 32;
  const std::vector<int> node_counts{4, 16, 64};

  std::printf("Figure 8: strong scaling on real-world-shaped R-MAT "
              "matrices, r = %lld\n(modeled seconds for %d FusedMM calls; "
              "baseline = 1D PETSc-like, 2 SpMM calls each)\n",
              static_cast<long long>(r), kPaperCalls);

  for (const auto& spec : specs) {
    const auto w = load_or_generate(spec.name, spec.n, spec.nnz_per_row, r,
                                    node_counts.back());
    const double phi = phi_ratio(w.s, r);
    print_header(std::string(spec.name) + "  n=" +
                 std::to_string(w.s.rows()) + " nnz=" +
                 std::to_string(w.s.nnz()) + " phi=" +
                 std::to_string(phi).substr(0, 5));

    std::printf("%-30s", "algorithm \\ p");
    for (const int p : node_counts) std::printf(" %11d", p);
    std::printf("\n");

    std::vector<double> best_ours(node_counts.size(), -1);
    std::vector<double> best_ours_comm(node_counts.size(), -1);
    for (const auto& variant : paper_variants()) {
      std::printf("%-30s", variant.name);
      for (std::size_t i = 0; i < node_counts.size(); ++i) {
        const auto best =
            best_over_c(variant.kind, variant.elision, node_counts[i], w);
        if (best.total_seconds < 0) {
          std::printf(" %11s", "n/a");
          continue;
        }
        std::printf(" %9.3fms", 1e3 * best.total_seconds);
        add_dist_record(records, "fig8_strong_scaling", spec.name,
                        variant.kind, variant.elision, node_counts[i], w,
                        best);
        if (best_ours[i] < 0 || best.total_seconds < best_ours[i]) {
          best_ours[i] = best.total_seconds;
        }
        if (best_ours_comm[i] < 0 || best.comm_seconds < best_ours_comm[i]) {
          best_ours_comm[i] = best.comm_seconds;
        }
      }
      std::printf("\n");
    }

    std::printf("%-30s", "1D PETSc-like (baseline)");
    std::vector<double> baseline(node_counts.size(), -1);
    std::vector<double> baseline_comm(node_counts.size(), -1);
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      auto algo =
          make_algorithm(AlgorithmKind::Baseline1D, node_counts[i], 1);
      const auto result = algo->run_fusedmm(FusedOrientation::A,
                                            Elision::None, w.s, w.a, w.b);
      const auto m = machine();
      baseline_comm[i] = kPaperCalls * result.stats.modeled_comm_seconds(m);
      baseline[i] =
          baseline_comm[i] + kPaperCalls * result.stats.modeled_phase_seconds(
                                               Phase::Computation, m);
      std::printf(" %9.3fms", 1e3 * baseline[i]);
    }
    std::printf("\n");
    std::printf("baseline/best (total)         ");
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      std::printf(" %10.1fx", baseline[i] / best_ours[i]);
    }
    // Communication-only ratio: the paper's >= 10x gap at 256 nodes is a
    // communication gap (local kernels are identical); at simulation
    // scale computation still masks part of it in the total.
    std::printf("\nbaseline/best (comm only)     ");
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      std::printf(" %10.1fx", baseline_comm[i] / best_ours_comm[i]);
    }
    std::printf("\n");
  }

  std::printf("\nPaper checks:\n"
              "  * every 1.5D/2.5D algorithm beats the 1D baseline by a "
              "growing factor (paper: >= 10x at scale);\n"
              "  * sparse-shifting wins the low-nnz/row matrices "
              "(amazon, uk-2002), dense-shifting + local fusion wins "
              "eukarya (111 nnz/row);\n"
              "  * eliding variants beat their unoptimized sequences "
              "(paper: 1.19x on uk-2002, 1.6x on eukarya at 256 "
              "nodes).\n");
  return finish_records(records, out_path);
}
