#pragma once
/// \file bench_common.hpp
/// Shared pieces of the paper-reproduction benchmark harness: workload
/// builders (Erdos-Renyi weak-scaling instances, R-MAT stand-ins for the
/// Table V matrices), the simulation-scale parameters, run helpers that
/// evaluate a FusedMM configuration and return the paper's "time for 5
/// FusedMM calls" under the Cori-like machine model, and table printing.
///
/// Scale: the paper runs up to 256 KNL nodes and n = 2^24; this harness
/// simulates the same algorithms with exact communication accounting at
/// n scaled down ~2^6 (keeping phi and nnz-per-row, which select the
/// winning algorithm) so every figure regenerates in seconds on a
/// laptop. Set DSK_BENCH_SCALE=2 (or 4) to double/quadruple n.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sparse/generate.hpp"

#if __has_include("dist/algorithm.hpp")
#define DSK_BENCH_HAVE_DIST 1
#include "dist/algorithm.hpp"
#include "dist/grid.hpp"
#include "model/optimal_c.hpp"
#include "model/predictor.hpp"
#include "runtime/machine.hpp"
#endif

namespace dsk::bench {

/// Machine-readable benchmark output: a flat JSON array of records, one
/// per measurement, written atomically on write(). Keys and values are
/// caller-controlled identifiers/numbers, so only minimal string
/// escaping is applied. This is the interchange format for the repo's
/// perf-trajectory tracking (BENCH_*.json files committed per PR).
class JsonRecords {
 public:
  class Record {
   public:
    Record& field(const std::string& key, const std::string& value) {
      std::string quoted;
      const std::string escaped = escape(value);
      quoted.reserve(escaped.size() + 2);
      quoted += '"';
      quoted += escaped;
      quoted += '"';
      fields_.emplace_back(key, std::move(quoted));
      return *this;
    }
    Record& field(const std::string& key, const char* value) {
      return field(key, std::string(value));
    }
    Record& field(const std::string& key, double value) {
      // inf/nan are not valid JSON tokens (a zero-duration timing would
      // otherwise poison the whole file); emit null instead.
      if (!std::isfinite(value)) {
        fields_.emplace_back(key, "null");
        return *this;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.9g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Record& field(const std::string& key, std::int64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Record& field(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Record& field(const std::string& key, int value) {
      return field(key, static_cast<std::int64_t>(value));
    }

   private:
    friend class JsonRecords;
    static std::string escape(const std::string& s) {
      std::string out;
      for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Record& add() {
    records_.emplace_back();
    return records_.back();
  }

  /// Returns false if the file could not be opened or fully written.
  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream out(path);
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << "  {";
      const auto& fields = records_[i].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        out << "\"" << Record::escape(fields[f].first)
            << "\": " << fields[f].second;
        if (f + 1 < fields.size()) out << ", ";
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    out.flush();
    return out.good();
  }

 private:
  std::vector<Record> records_;
};

inline int env_scale() {
  const char* s = std::getenv("DSK_BENCH_SCALE");
  const int v = s != nullptr ? std::atoi(s) : 1;
  return v >= 1 ? v : 1;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Everything below drives the *distributed* figure benchmarks and needs
// the dist layer (grids, algorithms, cost model). Guarded so the local
// kernel benchmark keeps building before src/dist lands.
#ifdef DSK_BENCH_HAVE_DIST

/// The paper reports "Time for 5 FusedMM Calls"; communication scales
/// exactly linearly in repetitions (tested), so we run one call and
/// scale the modeled time.
constexpr int kPaperCalls = 5;

inline MachineModel machine() { return MachineModel::cori_knl(); }

struct Workload {
  CooMatrix s;
  DenseMatrix a;
  DenseMatrix b;
  Index r = 0;

  CostInputs cost_inputs(int p, int c) const {
    return {static_cast<double>(s.rows()), static_cast<double>(s.cols()),
            static_cast<double>(r), static_cast<double>(s.nnz()), p, c};
  }
};

/// Square Erdos-Renyi workload with exact nnz-per-row (the paper's weak
/// scaling generator) and random dense matrices.
inline Workload make_er_workload(Index n, Index nnz_per_row, Index r,
                                 std::uint64_t seed) {
  Rng rng(seed);
  Workload w{erdos_renyi_fixed_row(n, n, nnz_per_row, rng), DenseMatrix(n, r),
             DenseMatrix(n, r), r};
  w.a.fill_random(rng);
  w.b.fill_random(rng);
  return w;
}

/// R-MAT workload standing in for a Table V matrix (power-law degrees).
inline Workload make_rmat_workload(Index n, Index nnz_per_row, Index r,
                                   std::uint64_t seed) {
  Rng rng(seed);
  Workload w{rmat(n, n, n * nnz_per_row, rng), DenseMatrix(n, r),
             DenseMatrix(n, r), r};
  w.a.fill_random(rng);
  w.b.fill_random(rng);
  return w;
}

struct RunOutcome {
  double comm_seconds = 0;  ///< modeled, for kPaperCalls calls
  double total_seconds = 0; ///< comm + computation
  double replication_seconds = 0;
  double propagation_seconds = 0;
  double computation_seconds = 0;
  /// Max-over-ranks communication words for ONE call (the metric of the
  /// paper's bandwidth analysis; latency-free).
  std::uint64_t comm_words = 0;
  int c = 1;
};

/// Run one FusedMM call and report modeled times for kPaperCalls calls.
inline RunOutcome run_fusedmm_once(AlgorithmKind kind, Elision elision,
                                   int p, int c, const Workload& w,
                                   FusedOrientation orientation =
                                       FusedOrientation::A) {
  auto algo = make_algorithm(kind, p, c);
  const auto result =
      algo->run_fusedmm(orientation, elision, w.s, w.a, w.b, 1);
  const auto m = machine();
  RunOutcome out;
  out.replication_seconds =
      kPaperCalls * result.stats.modeled_phase_seconds(Phase::Replication, m);
  out.propagation_seconds =
      kPaperCalls * result.stats.modeled_phase_seconds(Phase::Propagation, m);
  out.computation_seconds =
      kPaperCalls * result.stats.modeled_phase_seconds(Phase::Computation, m);
  out.comm_seconds = out.replication_seconds + out.propagation_seconds;
  out.total_seconds = out.comm_seconds + out.computation_seconds;
  out.comm_words = result.stats.max_words(Phase::Replication) +
                   result.stats.max_words(Phase::Propagation);
  out.c = c;
  return out;
}

/// Sweep the admissible replication factors (capped like the paper's
/// memory limit) and return the best observed total time — the paper
/// reports "the best runtime over replication factors 1 through 16".
inline RunOutcome best_over_c(AlgorithmKind kind, Elision elision, int p,
                              const Workload& w, int c_max = 16,
                              FusedOrientation orientation =
                                  FusedOrientation::A) {
  RunOutcome best;
  bool first = true;
  for (const int c : admissible_replication_factors(kind, p, c_max)) {
    // Exclude fully-degenerate grids (c = p for 1.5D, q = 1 for 2.5D):
    // every shift becomes a free self-message and the dense matrix is
    // replicated on every rank — memory-infeasible at the paper's scale
    // and outside its benchmarked design space.
    if (p > 1) {
      const bool is25d = kind == AlgorithmKind::DenseRepl25D ||
                         kind == AlgorithmKind::SparseRepl25D;
      if (is25d && Grid25D(p, c).q() == 1) continue;
      if (!is25d && c == p) continue;
    }
    if (kind == AlgorithmKind::SparseShift15D && w.r % (p / c) != 0) {
      continue; // r must divide into p/c slices (paper: min c enforced)
    }
    if (kind == AlgorithmKind::SparseRepl25D) {
      const Grid25D grid(p, c);
      if (w.r % (static_cast<Index>(grid.q()) * c) != 0) continue;
    }
    if (kind == AlgorithmKind::DenseRepl25D) {
      const Grid25D grid(p, c);
      if (w.r % grid.q() != 0 ||
          w.s.rows() % (static_cast<Index>(grid.q()) * c) != 0) {
        continue;
      }
    }
    const auto outcome = run_fusedmm_once(kind, elision, p, c, w,
                                          orientation);
    if (first || outcome.total_seconds < best.total_seconds) {
      best = outcome;
      first = false;
    }
  }
  if (first) {
    best.total_seconds = -1; // no admissible configuration
  }
  return best;
}

/// The eight algorithm variants of Figure 4 / Figure 8.
struct Variant {
  const char* name;
  AlgorithmKind kind;
  Elision elision;
};

/// Append one distributed measurement in the BENCH_dist_kernels.json
/// schema: bench/setup identifiers, algorithm + elision, grid (p, c),
/// problem shape, per-phase modeled seconds (for kPaperCalls calls), and
/// the max-per-rank communication words of one call.
inline void add_dist_record(JsonRecords& records, const std::string& bench,
                            const std::string& setup,
                            AlgorithmKind kind, Elision elision, int p,
                            const Workload& w, const RunOutcome& out) {
  records.add()
      .field("bench", bench)
      .field("setup", setup)
      .field("algorithm", to_string(kind))
      .field("elision", to_string(elision))
      .field("p", p)
      .field("c", out.c)
      .field("n", static_cast<std::int64_t>(w.s.rows()))
      .field("nnz", static_cast<std::int64_t>(w.s.nnz()))
      .field("r", static_cast<std::int64_t>(w.r))
      .field("replication_seconds", out.replication_seconds)
      .field("propagation_seconds", out.propagation_seconds)
      .field("computation_seconds", out.computation_seconds)
      .field("total_seconds", out.total_seconds)
      .field("comm_words", out.comm_words);
}

/// Shared `--out <path>` argument handling for the figure benches. A
/// malformed invocation exits immediately: a ~1 minute sweep that ends
/// without the baseline it was asked to write is worse than no run.
inline std::string out_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --out requires a path\n", argv[0]);
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return {};
}

/// Write the records if a path was requested; complain loudly on failure
/// so perf-trajectory tracking never silently loses a baseline.
inline int finish_records(const JsonRecords& records,
                          const std::string& path) {
  if (path.empty()) return 0;
  if (!records.write(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

inline std::vector<Variant> paper_variants() {
  return {
      {"1.5D DenseShift  None", AlgorithmKind::DenseShift15D,
       Elision::None},
      {"1.5D DenseShift  ReplReuse", AlgorithmKind::DenseShift15D,
       Elision::ReplicationReuse},
      {"1.5D DenseShift  LocalFusion", AlgorithmKind::DenseShift15D,
       Elision::LocalKernelFusion},
      {"1.5D SparseShift None", AlgorithmKind::SparseShift15D,
       Elision::None},
      {"1.5D SparseShift ReplReuse", AlgorithmKind::SparseShift15D,
       Elision::ReplicationReuse},
      {"2.5D SparseRepl  None", AlgorithmKind::SparseRepl25D,
       Elision::None},
      {"2.5D DenseRepl   ReplReuse", AlgorithmKind::DenseRepl25D,
       Elision::ReplicationReuse},
      {"2.5D DenseRepl   None", AlgorithmKind::DenseRepl25D,
       Elision::None},
  };
}

#endif // DSK_BENCH_HAVE_DIST

} // namespace dsk::bench
