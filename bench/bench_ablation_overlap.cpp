/// Ablation: communication/computation overlap (the paper's future-work
/// direction in its Conclusions: "Further performance improvement may be
/// possible by overlapping communication in the propagation phase of any
/// of our algorithms with local computation", e.g. with one-sided MPI /
/// RDMA).
///
/// Two views, one modeled and one measured:
///  1. Modeled upper bound — using the exact per-rank phase costs from
///     the simulator, kernel time with propagation fully hidden behind
///     local kernels vs the bulk-synchronous sum.
///  2. Measured — the propagation engine actually implements both
///     schedules (dist/shift_loop.hpp): the bulk-synchronous BSP loop
///     and the double-buffered loop that forwards blocks before
///     computing and receives after. The simulated ranks are real
///     threads running real kernels, so the schedules' waiting structure
///     is directly measurable as per-rank wall-clock spans, and the two
///     outputs are compared bit-for-bit.
///
/// The interesting structure: overlap pays most where propagation and
/// computation are balanced (dense-shifting at moderate phi) and least
/// where one side dominates (sparse-shifting at low phi is
/// propagation-bound; high-phi dense problems are compute-bound).

#include "bench_common.hpp"
#include "common/timer.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

struct Measured {
  double wall_seconds = 0; ///< best-of-N host wall for kRepeats calls
  DenseMatrix output;
  WorldStats stats; ///< from the last trial (counters are deterministic)
};

/// FusedMM calls per timed run: repeating inside one world amortizes
/// world/setup cost so the schedules' per-step waiting structure is
/// what's measured.
constexpr int kRepeats = 8;

Measured run_measured(AlgorithmKind kind, Elision elision, int p, int c,
                      ShiftSchedule schedule, const Workload& w,
                      int trials,
                      ReplicationMode mode = ReplicationMode::Dense) {
  AlgorithmOptions options;
  options.schedule = schedule;
  options.replication = mode;
  auto algo = make_algorithm(kind, p, c, options);
  Measured best;
  for (int trial = 0; trial < trials; ++trial) {
    Timer timer;
    auto result = algo->run_fusedmm(FusedOrientation::A, elision, w.s,
                                    w.a, w.b, kRepeats);
    const double wall = timer.seconds();
    if (trial == 0 || wall < best.wall_seconds) {
      best.wall_seconds = wall;
    }
    best.output = std::move(result.output);
    best.stats = std::move(result.stats);
  }
  return best;
}

} // namespace

int main() {
  print_header("Ablation: upper bound on comm/comp overlap "
               "(paper's future work)");

  const Index n = 8192 * env_scale();
  const Index r = 32;
  const int p = 16;

  std::printf("n = %lld, r = %lld, p = %d; modeled ms for one FusedMM\n",
              static_cast<long long>(n), static_cast<long long>(r), p);
  std::printf("%-30s %6s %5s %10s %10s %10s %9s\n", "algorithm", "nnz/row",
              "c", "bulk-sync", "overlap", "pipeline", "saving");

  for (const Index d : {2, 8, 32}) {
    const auto w = make_er_workload(n, d, r,
                                    /*seed=*/9000 + static_cast<unsigned>(d));
    for (const auto& variant : paper_variants()) {
      // Use the model-best admissible c for a fair comparison.
      const auto best =
          best_replication_factor(variant.kind, variant.elision,
                                  w.cost_inputs(p, 1), /*c_max=*/8);
      if (variant.kind == AlgorithmKind::SparseShift15D &&
          w.r % (p / best.c) != 0) {
        continue;
      }
      auto algo = make_algorithm(variant.kind, p, best.c);
      const auto result = algo->run_fusedmm(
          FusedOrientation::A, variant.elision, w.s, w.a, w.b);
      const auto m = machine();
      const double bulk = result.stats.modeled_kernel_seconds(m);
      const double overlapped = result.stats.modeled_overlap_seconds(m);
      const double pipelined = result.stats.modeled_pipeline_seconds(m);
      std::printf("%-30s %6lld %5d %9.4f %10.4f %10.4f %8.1f%%\n",
                  variant.name, static_cast<long long>(d), best.c,
                  1e3 * bulk, 1e3 * overlapped, 1e3 * pipelined,
                  100.0 * (bulk - pipelined) / bulk);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading: 'overlap' hides propagation behind local kernels "
      "(double-buffered bound); 'pipeline' additionally streams\n"
      "the replication collectives into the first shift step "
      "(max(comp, repl + prop) per rank), so replication stops being\n"
      "the unhideable prefix; 'saving' compares pipeline to bulk-sync. "
      "The closed-form equivalents (Table III words) are in\n"
      "model/cost_model.hpp:schedule_bounds.\n");

  // ---- Measured overlap: bulk-synchronous vs double-buffered schedule
  // on a propagation-dominated instance (many shifts, light local
  // kernels) — the regime where the schedule's waiting structure, not
  // arithmetic, sets the wall-clock. The bulk-synchronous loop pays a
  // rendezvous per shift; the double-buffered loop forwards blocks
  // before computing and lets ranks pipeline across steps.
  print_header("Measured: bulk-synchronous vs double-buffered vs "
               "pipelined schedule");
  const Index nm = 1024 * env_scale();
  const auto wm = make_er_workload(nm, 4, r, /*seed=*/9008);
  std::printf("propagation-bound instance: n = %lld, nnz/row = 4, "
              "r = %lld, p = %d; host wall for %d FusedMM calls, best of "
              "5 runs; identical output required\n",
              static_cast<long long>(nm), static_cast<long long>(r), p,
              kRepeats);
  std::printf("%-30s %5s %12s %12s %12s %8s %10s\n", "algorithm", "c",
              "bulk-sync", "dbl-buffer", "pipelined", "saving",
              "identical");
  const int trials = 5;
  bool all_identical = true;
  bool buffered_wins = true;
  const struct {
    const char* name;
    AlgorithmKind kind;
    Elision elision;
    int c;
  } measured_cases[] = {
      {"1.5D DenseShift  ReplReuse", AlgorithmKind::DenseShift15D,
       Elision::ReplicationReuse, 1},
      {"1.5D SparseShift ReplReuse", AlgorithmKind::SparseShift15D,
       Elision::ReplicationReuse, 1},
      {"2.5D DenseRepl   ReplReuse", AlgorithmKind::DenseRepl25D,
       Elision::ReplicationReuse, 1},
      {"2.5D SparseRepl  None", AlgorithmKind::SparseRepl25D,
       Elision::None, 1},
  };
  for (const auto& cs : measured_cases) {
    const auto bulk =
        run_measured(cs.kind, cs.elision, p, cs.c,
                     ShiftSchedule::BulkSynchronous, wm, trials);
    const auto buffered =
        run_measured(cs.kind, cs.elision, p, cs.c,
                     ShiftSchedule::DoubleBuffered, wm, trials);
    const auto pipelined =
        run_measured(cs.kind, cs.elision, p, cs.c,
                     ShiftSchedule::Pipelined, wm, trials);
    const bool identical =
        bulk.output.max_abs_diff(buffered.output) == 0.0 &&
        bulk.output.max_abs_diff(pipelined.output) == 0.0;
    all_identical = all_identical && identical;
    buffered_wins =
        buffered_wins && buffered.wall_seconds <= bulk.wall_seconds;
    std::printf("%-30s %5d %10.3fms %10.3fms %10.3fms %7.1f%% %10s\n",
                cs.name, cs.c, 1e3 * bulk.wall_seconds,
                1e3 * buffered.wall_seconds, 1e3 * pipelined.wall_seconds,
                100.0 * (bulk.wall_seconds - pipelined.wall_seconds) /
                    bulk.wall_seconds,
                identical ? "yes" : "NO");
  }
  std::printf("\nMeasured check: overlapping schedules <= "
              "bulk-synchronous with bit-identical output on every case "
              "— %s.\n",
              all_identical && buffered_wins ? "HOLDS" : "VIOLATED");

  // ---- Measured pipelined-replication overlap on a REPLICATION-bound
  // instance: large c (long fiber collectives) and a short shift ring
  // (L = p/c = 2 steps), so the all-gather prefix — which neither BSP
  // nor DB can hide — dominates. The pipelined schedule streams it into
  // shift step 0. This is the acceptance gate: bit-identical output,
  // word counts unchanged, and measured wall no worse than
  // bulk-synchronous.
  print_header("Measured: pipelined replication overlap "
               "(replication-bound, c = 8)");
  const Index nr = 1024 * env_scale();
  const int cr = 8;
  const auto wr = make_rmat_workload(nr, 4, 64, /*seed=*/9010);
  std::printf("replication-bound instance: n = %lld, nnz/row ~ 4, "
              "r = 64, p = %d, c = %d (L = %d shifts); host wall for %d "
              "FusedMM calls, best of %d runs\n",
              static_cast<long long>(nr), p, cr, p / cr, kRepeats,
              trials);
  std::printf("%-30s %12s %12s %12s %8s\n", "replication mode",
              "bulk-sync", "dbl-buffer", "pipelined", "saving");
  bool repl_identical = true;
  bool repl_words_unchanged = true;
  bool repl_nonregressing = true;
  for (const ReplicationMode mode :
       {ReplicationMode::Dense, ReplicationMode::SparseRows}) {
    const auto kind = AlgorithmKind::DenseShift15D;
    const auto elision = Elision::ReplicationReuse;
    // Interleave the trials (one of each schedule per round) so a slow
    // host period hits every schedule equally instead of skewing
    // whichever one owned that time window; keep the per-schedule best.
    Measured bulk, buffered, pipelined;
    const int gate_trials = 7;
    for (int trial = 0; trial < gate_trials; ++trial) {
      auto b = run_measured(kind, elision, p, cr,
                            ShiftSchedule::BulkSynchronous, wr, 1, mode);
      auto d = run_measured(kind, elision, p, cr,
                            ShiftSchedule::DoubleBuffered, wr, 1, mode);
      auto pl = run_measured(kind, elision, p, cr,
                             ShiftSchedule::Pipelined, wr, 1, mode);
      const auto keep_best = [trial](Measured& best, Measured&& fresh) {
        if (trial == 0 || fresh.wall_seconds < best.wall_seconds) {
          best = std::move(fresh);
        }
      };
      keep_best(bulk, std::move(b));
      keep_best(buffered, std::move(d));
      keep_best(pipelined, std::move(pl));
    }
    repl_identical = repl_identical &&
                     bulk.output.max_abs_diff(buffered.output) == 0.0 &&
                     bulk.output.max_abs_diff(pipelined.output) == 0.0;
    for (const Phase phase : {Phase::Replication, Phase::Propagation}) {
      repl_words_unchanged =
          repl_words_unchanged &&
          pipelined.stats.max_words(phase) == bulk.stats.max_words(phase);
    }
    // 5% headroom: interleaved best-of-7 is stable locally, but shared
    // CI runners jitter at the sub-millisecond scale this instance
    // runs at. The pre-chunk-copy-fix regression this gate exists to
    // catch measured +6.4% vs bulk, comfortably outside the margin.
    repl_nonregressing =
        repl_nonregressing &&
        pipelined.wall_seconds <= 1.05 * bulk.wall_seconds;
    std::printf("%-30s %10.3fms %10.3fms %10.3fms %7.1f%%\n",
                to_string(mode).c_str(), 1e3 * bulk.wall_seconds,
                1e3 * buffered.wall_seconds, 1e3 * pipelined.wall_seconds,
                100.0 * (bulk.wall_seconds - pipelined.wall_seconds) /
                    bulk.wall_seconds);
  }
  std::printf("\nPipelined gate: bit-identical output %s, word counts "
              "unchanged %s, pipelined wall <= bulk-synchronous %s.\n",
              repl_identical ? "HOLDS" : "VIOLATED",
              repl_words_unchanged ? "HOLDS" : "VIOLATED",
              repl_nonregressing ? "HOLDS" : "VIOLATED");
  // Numerics and word counts are hard failures, as is a pipelined
  // schedule slower than bulk-synchronous on the replication-bound
  // instance; wall-clock inversions in the general (propagation-bound)
  // table above are reported but not gated — loaded hosts jitter.
  return all_identical && repl_identical && repl_words_unchanged &&
                 repl_nonregressing
             ? 0
             : 1;
}
