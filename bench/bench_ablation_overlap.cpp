/// Ablation: communication/computation overlap (the paper's future-work
/// direction in its Conclusions: "Further performance improvement may be
/// possible by overlapping communication in the propagation phase of any
/// of our algorithms with local computation", e.g. with one-sided MPI /
/// RDMA).
///
/// Two views, one modeled and one measured:
///  1. Modeled upper bound — using the exact per-rank phase costs from
///     the simulator, kernel time with propagation fully hidden behind
///     local kernels vs the bulk-synchronous sum.
///  2. Measured — the propagation engine actually implements both
///     schedules (dist/shift_loop.hpp): the bulk-synchronous BSP loop
///     and the double-buffered loop that forwards blocks before
///     computing and receives after. The simulated ranks are real
///     threads running real kernels, so the schedules' waiting structure
///     is directly measurable as per-rank wall-clock spans, and the two
///     outputs are compared bit-for-bit.
///
/// The interesting structure: overlap pays most where propagation and
/// computation are balanced (dense-shifting at moderate phi) and least
/// where one side dominates (sparse-shifting at low phi is
/// propagation-bound; high-phi dense problems are compute-bound).

#include "bench_common.hpp"
#include "common/timer.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

struct Measured {
  double wall_seconds = 0; ///< best-of-N host wall for kRepeats calls
  DenseMatrix output;
};

/// FusedMM calls per timed run: repeating inside one world amortizes
/// world/setup cost so the schedules' per-step waiting structure is
/// what's measured.
constexpr int kRepeats = 8;

Measured run_measured(AlgorithmKind kind, Elision elision, int p, int c,
                      ShiftSchedule schedule, const Workload& w,
                      int trials) {
  AlgorithmOptions options;
  options.schedule = schedule;
  auto algo = make_algorithm(kind, p, c, options);
  Measured best;
  for (int trial = 0; trial < trials; ++trial) {
    Timer timer;
    auto result = algo->run_fusedmm(FusedOrientation::A, elision, w.s,
                                    w.a, w.b, kRepeats);
    const double wall = timer.seconds();
    if (trial == 0 || wall < best.wall_seconds) {
      best.wall_seconds = wall;
    }
    best.output = std::move(result.output);
  }
  return best;
}

} // namespace

int main() {
  print_header("Ablation: upper bound on comm/comp overlap "
               "(paper's future work)");

  const Index n = 8192 * env_scale();
  const Index r = 32;
  const int p = 16;

  std::printf("n = %lld, r = %lld, p = %d; modeled ms for one FusedMM\n",
              static_cast<long long>(n), static_cast<long long>(r), p);
  std::printf("%-30s %6s %5s %10s %10s %9s\n", "algorithm", "nnz/row", "c",
              "bulk-sync", "overlap", "saving");

  for (const Index d : {2, 8, 32}) {
    const auto w = make_er_workload(n, d, r,
                                    /*seed=*/9000 + static_cast<unsigned>(d));
    for (const auto& variant : paper_variants()) {
      // Use the model-best admissible c for a fair comparison.
      const auto best =
          best_replication_factor(variant.kind, variant.elision,
                                  w.cost_inputs(p, 1), /*c_max=*/8);
      if (variant.kind == AlgorithmKind::SparseShift15D &&
          w.r % (p / best.c) != 0) {
        continue;
      }
      auto algo = make_algorithm(variant.kind, p, best.c);
      const auto result = algo->run_fusedmm(
          FusedOrientation::A, variant.elision, w.s, w.a, w.b);
      const auto m = machine();
      const double bulk = result.stats.modeled_kernel_seconds(m);
      const double overlapped = result.stats.modeled_overlap_seconds(m);
      std::printf("%-30s %6lld %5d %9.4f %10.4f %8.1f%%\n", variant.name,
                  static_cast<long long>(d), best.c, 1e3 * bulk,
                  1e3 * overlapped, 100.0 * (bulk - overlapped) / bulk);
    }
    std::printf("\n");
  }

  std::printf("Reading: 'saving' is the upper bound from hiding all "
              "propagation behind local kernels; replication (fiber\n"
              "collectives) cannot overlap because its output is needed "
              "before any local work starts.\n");

  // ---- Measured overlap: bulk-synchronous vs double-buffered schedule
  // on a propagation-dominated instance (many shifts, light local
  // kernels) — the regime where the schedule's waiting structure, not
  // arithmetic, sets the wall-clock. The bulk-synchronous loop pays a
  // rendezvous per shift; the double-buffered loop forwards blocks
  // before computing and lets ranks pipeline across steps.
  print_header("Measured: double-buffered vs bulk-synchronous schedule");
  const Index nm = 1024 * env_scale();
  const auto wm = make_er_workload(nm, 4, r, /*seed=*/9008);
  std::printf("propagation-bound instance: n = %lld, nnz/row = 4, "
              "r = %lld, p = %d; host wall for %d FusedMM calls, best of "
              "5 runs; identical output required\n",
              static_cast<long long>(nm), static_cast<long long>(r), p,
              kRepeats);
  std::printf("%-30s %5s %12s %12s %8s %10s\n", "algorithm", "c",
              "bulk-sync", "dbl-buffer", "saving", "identical");
  const int trials = 5;
  bool all_identical = true;
  bool buffered_wins = true;
  const struct {
    const char* name;
    AlgorithmKind kind;
    Elision elision;
    int c;
  } measured_cases[] = {
      {"1.5D DenseShift  ReplReuse", AlgorithmKind::DenseShift15D,
       Elision::ReplicationReuse, 1},
      {"1.5D SparseShift ReplReuse", AlgorithmKind::SparseShift15D,
       Elision::ReplicationReuse, 1},
      {"2.5D DenseRepl   ReplReuse", AlgorithmKind::DenseRepl25D,
       Elision::ReplicationReuse, 1},
      {"2.5D SparseRepl  None", AlgorithmKind::SparseRepl25D,
       Elision::None, 1},
  };
  for (const auto& cs : measured_cases) {
    const auto bulk =
        run_measured(cs.kind, cs.elision, p, cs.c,
                     ShiftSchedule::BulkSynchronous, wm, trials);
    const auto buffered =
        run_measured(cs.kind, cs.elision, p, cs.c,
                     ShiftSchedule::DoubleBuffered, wm, trials);
    const bool identical =
        bulk.output.max_abs_diff(buffered.output) == 0.0;
    all_identical = all_identical && identical;
    buffered_wins =
        buffered_wins && buffered.wall_seconds <= bulk.wall_seconds;
    std::printf("%-30s %5d %10.3fms %10.3fms %7.1f%% %10s\n", cs.name,
                cs.c, 1e3 * bulk.wall_seconds,
                1e3 * buffered.wall_seconds,
                100.0 * (bulk.wall_seconds - buffered.wall_seconds) /
                    bulk.wall_seconds,
                identical ? "yes" : "NO");
  }
  std::printf("\nMeasured check: double-buffered <= bulk-synchronous with "
              "bit-identical output on every case — %s.\n",
              all_identical && buffered_wins ? "HOLDS" : "VIOLATED");
  // Identical output is a hard failure; a wall-clock inversion on a
  // loaded host is reported above but only the numerics gate the exit.
  return all_identical ? 0 : 1;
}
