/// Ablation: communication/computation overlap (the paper's future-work
/// direction in its Conclusions: "Further performance improvement may be
/// possible by overlapping communication in the propagation phase of any
/// of our algorithms with local computation", e.g. with one-sided MPI /
/// RDMA). Using the exact per-rank phase costs from the simulator, this
/// bench bounds the achievable saving: kernel time with propagation
/// fully hidden behind local kernels vs the measured bulk-synchronous
/// time.
///
/// The interesting structure: overlap pays most where propagation and
/// computation are balanced (dense-shifting at moderate phi) and least
/// where one side dominates (sparse-shifting at low phi is
/// propagation-bound; high-phi dense problems are compute-bound).

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

int main() {
  print_header("Ablation: upper bound on comm/comp overlap "
               "(paper's future work)");

  const Index n = 8192 * env_scale();
  const Index r = 32;
  const int p = 16;

  std::printf("n = %lld, r = %lld, p = %d; modeled ms for one FusedMM\n",
              static_cast<long long>(n), static_cast<long long>(r), p);
  std::printf("%-30s %6s %5s %10s %10s %9s\n", "algorithm", "nnz/row", "c",
              "bulk-sync", "overlap", "saving");

  for (const Index d : {2, 8, 32}) {
    const auto w = make_er_workload(n, d, r,
                                    /*seed=*/9000 + static_cast<unsigned>(d));
    for (const auto& variant : paper_variants()) {
      // Use the model-best admissible c for a fair comparison.
      const auto best =
          best_replication_factor(variant.kind, variant.elision,
                                  w.cost_inputs(p, 1), /*c_max=*/8);
      if (variant.kind == AlgorithmKind::SparseShift15D &&
          w.r % (p / best.c) != 0) {
        continue;
      }
      auto algo = make_algorithm(variant.kind, p, best.c);
      const auto result = algo->run_fusedmm(
          FusedOrientation::A, variant.elision, w.s, w.a, w.b);
      const auto m = machine();
      const double bulk = result.stats.modeled_kernel_seconds(m);
      const double overlapped = result.stats.modeled_overlap_seconds(m);
      std::printf("%-30s %6lld %5d %9.4f %10.4f %8.1f%%\n", variant.name,
                  static_cast<long long>(d), best.c, 1e3 * bulk,
                  1e3 * overlapped, 100.0 * (bulk - overlapped) / bulk);
    }
    std::printf("\n");
  }

  std::printf("Reading: 'saving' is the upper bound from hiding all "
              "propagation behind local kernels; replication (fiber\n"
              "collectives) cannot overlap because its output is needed "
              "before any local work starts.\n");
  return 0;
}
