/// Figure 9 reproduction: ALS collaborative filtering and GAT forward
/// pass on the amazon-shaped matrix, with the distributed kernels
/// embedded; the bar structure is FusedMM replication / propagation /
/// computation plus communication and computation outside FusedMM.
/// The paper runs 20 CG iterations (10 per factor) at 256 nodes with
/// r = 128; the simulation runs the same iteration structure at p = 16,
/// r = 32 on the scaled amazon stand-in.
///
/// Expected shapes: 1.5D dense shifting pays the least outside FusedMM
/// (full rows local); the sparse-shifting / sparse-replicating layouts
/// pay extra application communication for their r-split rows, and the
/// 2.5D layouts pay output redistribution (paper Section VI-E).

#include "apps/als.hpp"
#include "apps/gat.hpp"
#include "bench_common.hpp"
#include "dist/problem.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

void print_costs(const char* name, const AppCosts& costs) {
  std::printf("%-34s %9.4f %9.4f %9.4f %9.4f %9.4f %10.4f\n", name,
              costs.fused_replication_seconds,
              costs.fused_propagation_seconds,
              costs.fused_computation_seconds, costs.app_comm_seconds,
              costs.app_comp_seconds, costs.total_seconds());
}

} // namespace

int main() {
  const Index n = 16384 * env_scale();
  const Index d = 16; // amazon-like nnz/row
  const Index r = 32;
  const int p = 16;

  std::printf("Figure 9: ALS and GAT on amazon(sim) n=%lld (%lld nnz/row), "
              "p=%d, r=%lld — modeled seconds\n",
              static_cast<long long>(n), static_cast<long long>(d), p,
              static_cast<long long>(r));
  std::printf("%-34s %9s %9s %9s %9s %9s %10s\n", "configuration",
              "f.repl", "f.prop", "f.comp", "app comm", "app comp",
              "total");

  struct Case {
    const char* name;
    AlgorithmKind kind;
    int c;
    Elision elision;
  };

  // --- ALS: 10 CG iterations per factor, one sweep (paper: 20 total).
  print_header("ALS (20 CG iterations via batched FusedMM)");
  const auto ratings = [&] {
    Rng rng(77);
    auto pattern = rmat(n, n, n * d, rng);
    return pattern;
  }();
  const Case als_cases[] = {
      {"ALS 1.5D SparseShift ReplReuse", AlgorithmKind::SparseShift15D, 4,
       Elision::ReplicationReuse},
      {"ALS 2.5D SparseRepl  None", AlgorithmKind::SparseRepl25D, 4,
       Elision::None},
      {"ALS 2.5D DenseRepl   ReplReuse", AlgorithmKind::DenseRepl25D, 4,
       Elision::ReplicationReuse},
      {"ALS 1.5D DenseShift  ReplReuse", AlgorithmKind::DenseShift15D, 4,
       Elision::ReplicationReuse},
      {"ALS 1.5D DenseShift  LocalFusion", AlgorithmKind::DenseShift15D, 4,
       Elision::LocalKernelFusion},
  };
  for (const auto& cs : als_cases) {
    AlsConfig config;
    config.rank = r;
    config.cg_iterations = 10;
    config.sweeps = 1;
    config.kind = cs.kind;
    config.p = p;
    config.c = cs.c;
    config.elision = cs.elision;
    DenseMatrix a0(ratings.rows(), r), b0(ratings.cols(), r);
    const auto padded =
        pad_problem(cs.kind, p, cs.c, ratings, a0, b0);
    const auto result = run_als(padded.s, config);
    print_costs(cs.name, result.costs);
  }

  // --- GAT forward pass (multi-head, softmax edge weights). The 1.5D
  // local-fusion variant is excluded: incompatible with softmax.
  print_header("GAT forward pass (4 heads, softmax attention)");
  const auto graph = [&] {
    Rng rng(78);
    auto g = rmat(n, n, n * d, rng);
    for (auto& v : g.values()) v = 1.0;
    return g;
  }();
  Rng feature_rng(79);
  DenseMatrix features(n, r);
  features.fill_random(feature_rng);

  const Case gat_cases[] = {
      {"GAT 1.5D SparseShift ReplReuse", AlgorithmKind::SparseShift15D, 4,
       Elision::ReplicationReuse},
      {"GAT 2.5D SparseRepl  None", AlgorithmKind::SparseRepl25D, 4,
       Elision::None},
      {"GAT 2.5D DenseRepl   ReplReuse", AlgorithmKind::DenseRepl25D, 4,
       Elision::ReplicationReuse},
      {"GAT 1.5D DenseShift  ReplReuse", AlgorithmKind::DenseShift15D, 4,
       Elision::ReplicationReuse},
  };
  for (const auto& cs : gat_cases) {
    GatConfig config;
    config.heads = 4;
    config.out_features = r;
    config.kind = cs.kind;
    config.p = p;
    config.c = cs.c;
    config.elision = cs.elision;
    const auto padded =
        pad_problem(cs.kind, p, cs.c, graph, features, features);
    const auto result = gat_forward(padded.s, padded.a, config);
    print_costs(cs.name, result.costs);
  }

  std::printf("\nPaper checks: dense-shifting 1.5D pays the least outside "
              "FusedMM; sparse layouts pay r-split reductions; 2.5D "
              "layouts additionally pay output redistribution.\n");
  return 0;
}
