/// Figure 5 reproduction: weak-scaling setup 1 time breakdown into
/// replication / propagation / computation for the five communication
/// configurations the paper plots, at doubling node counts. The paper's
/// expectation: communication time grows ~sqrt(p) for 1.5D algorithms
/// and ~p^(1/3) for 2.5D algorithms while computation stays flat.

#include <cmath>

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

int main() {
  const Index n0 = 1024 * env_scale();
  const Index d0 = 4;
  const Index r = 32;
  const std::vector<int> node_counts{2, 4, 8, 16, 32, 64};

  std::printf("Figure 5: weak scaling setup 1 breakdown, modeled seconds "
              "for %d FusedMM calls\n",
              kPaperCalls);

  const Variant variants[] = {
      {"1.5D DenseShift ReplReuse", AlgorithmKind::DenseShift15D,
       Elision::ReplicationReuse},
      {"1.5D DenseShift LocalFusion", AlgorithmKind::DenseShift15D,
       Elision::LocalKernelFusion},
      {"1.5D SparseShift ReplReuse", AlgorithmKind::SparseShift15D,
       Elision::ReplicationReuse},
      {"2.5D DenseRepl ReplReuse", AlgorithmKind::DenseRepl25D,
       Elision::ReplicationReuse},
      {"2.5D SparseRepl None", AlgorithmKind::SparseRepl25D,
       Elision::None},
  };

  for (const auto& variant : variants) {
    print_header(variant.name);
    std::printf("%6s %6s %10s %10s %10s %10s  (ms)\n", "p", "c*", "replicate",
                "propagate", "compute", "comm");
    double first_comm = -1;
    int first_p = 0;
    double last_comm = 0;
    int last_p = 0;
    for (const int p : node_counts) {
      const auto w = make_er_workload(
          n0 * p, d0, r, /*seed=*/300 + static_cast<unsigned>(p));
      const auto best = best_over_c(variant.kind, variant.elision, p, w);
      if (best.total_seconds < 0) {
        std::printf("%6d %6s\n", p, "n/a");
        continue;
      }
      std::printf("%6d %6d %10.4f %10.4f %10.4f %10.4f\n", p, best.c,
                  1e3 * best.replication_seconds,
                  1e3 * best.propagation_seconds,
                  1e3 * best.computation_seconds, 1e3 * best.comm_seconds);
      // Fit the growth exponent over p >= 8, past the small-grid regime
      // where the admissible-c set is too coarse.
      if (p >= 8 && first_comm < 0 && best.comm_seconds > 0) {
        first_comm = best.comm_seconds;
        first_p = p;
      }
      last_comm = best.comm_seconds;
      last_p = p;
    }
    if (first_comm > 0 && last_p > first_p) {
      const double observed = std::log(last_comm / first_comm) /
                              std::log(static_cast<double>(last_p) /
                                       first_p);
      const bool is25d = variant.kind == AlgorithmKind::DenseRepl25D ||
                         variant.kind == AlgorithmKind::SparseRepl25D;
      std::printf("  comm-time growth exponent: p^%.2f (paper predicts "
                  "p^%.2f)\n",
                  observed, is25d ? 1.0 / 3.0 : 0.5);
    }
  }
  return 0;
}
