/// Table III reproduction: for every FusedMM algorithm + eliding
/// strategy, compare the communication words MEASURED by the simulated
/// runtime against the paper's closed-form words-communicated column.
/// Measured/model ratios of 1.00 validate both the algorithms and the
/// analysis. (Sparse propagation carries one header word per message;
/// the residual ratio above 1.00 is exactly those headers.)

#include "bench_common.hpp"
#include "model/cost_model.hpp"

using namespace dsk;
using namespace dsk::bench;

int main() {
  print_header("Table III: words communicated per FusedMM, "
               "measured vs closed form");

  const Index n = 4096 * env_scale();
  const Index r = 64;
  const Index d = 8; // nnz per row -> phi = 1/8
  const auto w = make_er_workload(n, d, r, /*seed=*/1);

  std::printf("n = %lld, nnz = %lld, r = %lld, phi = %.3f\n",
              static_cast<long long>(n),
              static_cast<long long>(w.s.nnz()),
              static_cast<long long>(r), phi_ratio(w.s, r));
  std::printf("%-34s %3s %3s %14s %14s %7s\n", "algorithm", "p", "c",
              "measured", "model", "ratio");

  struct Case {
    Variant variant;
    int p;
    int c;
  };
  std::vector<Case> cases;
  for (const auto& v : paper_variants()) {
    const bool is25d = v.kind == AlgorithmKind::DenseRepl25D ||
                       v.kind == AlgorithmKind::SparseRepl25D;
    if (is25d) {
      cases.push_back({v, 16, 4});
      cases.push_back({v, 32, 2});
    } else {
      cases.push_back({v, 16, 4});
      cases.push_back({v, 32, 8});
    }
  }

  for (const auto& cs : cases) {
    auto algo = make_algorithm(cs.variant.kind, cs.p, cs.c);
    const auto result = algo->run_fusedmm(FusedOrientation::A,
                                          cs.variant.elision, w.s, w.a, w.b);
    const auto measured = result.stats.max_words(Phase::Replication) +
                          result.stats.max_words(Phase::Propagation);
    const auto model = fusedmm_cost(cs.variant.kind, cs.variant.elision,
                                    w.cost_inputs(cs.p, cs.c));
    std::printf("%-34s %3d %3d %14llu %14.0f %7.3f\n", cs.variant.name,
                cs.p, cs.c, static_cast<unsigned long long>(measured),
                model.total_words(),
                static_cast<double>(measured) / model.total_words());
  }

  std::printf("\nPaper check: every ratio should be 1.00 (+epsilon for "
              "sparse message headers); the runtime moves exactly the "
              "words Table III counts.\n");
  return 0;
}
