/// Table IV reproduction: optimal replication factors. For each
/// algorithm + eliding strategy we print the paper's closed form c*, the
/// discrete argmin of the Table III model over admissible factors, and
/// the argmin of the MEASURED communication time on the simulator —
/// all three should track each other, with the elision ordering
/// c*(reuse) >= c*(none) >= c*(fusion) visible across the board.

#include <cmath>

#include "bench_common.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

/// Argmin over c of the MEASURED communication words (the bandwidth
/// metric the paper's analysis minimizes; at paper scale bandwidth
/// dominates latency, so words are the scale-independent comparison).
int measured_best_c(AlgorithmKind kind, Elision elision, int p,
                    const Workload& w, int c_max) {
  int best_c = -1;
  std::uint64_t best_words = 0;
  for (const int c : admissible_replication_factors(kind, p, c_max)) {
    if (kind == AlgorithmKind::SparseShift15D && w.r % (p / c) != 0) {
      continue;
    }
    const auto outcome = run_fusedmm_once(kind, elision, p, c, w);
    if (best_c < 0 || outcome.comm_words < best_words) {
      best_c = c;
      best_words = outcome.comm_words;
    }
  }
  return best_c;
}

} // namespace

int main() {
  print_header("Table IV: optimal replication factors "
               "(closed form vs model argmin vs measured argmin)");

  const Index n = 8192 * env_scale();
  const Index r = 64;
  const Index d = 8; // phi = 1/8, the paper's weak-scaling density
  const auto w = make_er_workload(n, d, r, /*seed=*/2);
  const int p = 64;
  const int c_max = 16;
  const double phi = phi_ratio(w.s, r);

  std::printf("n = %lld, r = %lld, phi = %.3f, p = %d (c capped at %d as "
              "in the paper)\n",
              static_cast<long long>(n), static_cast<long long>(r), phi, p,
              c_max);
  std::printf("%-34s %12s %12s %12s\n", "algorithm", "closed form",
              "model argmin", "measured");

  struct Row {
    const char* name;
    AlgorithmKind kind;
    Elision elision;
  };
  const Row rows[] = {
      {"1.5D DenseShift  None", AlgorithmKind::DenseShift15D,
       Elision::None},
      {"1.5D DenseShift  ReplReuse", AlgorithmKind::DenseShift15D,
       Elision::ReplicationReuse},
      {"1.5D DenseShift  LocalFusion", AlgorithmKind::DenseShift15D,
       Elision::LocalKernelFusion},
      {"1.5D SparseShift ReplReuse", AlgorithmKind::SparseShift15D,
       Elision::ReplicationReuse},
      {"2.5D DenseRepl   None", AlgorithmKind::DenseRepl25D,
       Elision::None},
      {"2.5D DenseRepl   ReplReuse", AlgorithmKind::DenseRepl25D,
       Elision::ReplicationReuse},
      {"2.5D SparseRepl  None", AlgorithmKind::SparseRepl25D,
       Elision::None},
  };

  for (const auto& row : rows) {
    const double closed = closed_form_optimal_c(row.kind, row.elision, p,
                                                phi);
    const auto model_best =
        best_replication_factor(row.kind, row.elision,
                                w.cost_inputs(p, 1), c_max);
    const int measured = measured_best_c(row.kind, row.elision, p, w,
                                         c_max);
    std::printf("%-34s %12.2f %12d %12d\n", row.name, closed, model_best.c,
                measured);
  }

  std::printf("\nPaper check (Fig. 7 ordering): replication reuse raises "
              "the optimal c, local kernel fusion lowers it, relative to "
              "the unoptimized sequence.\n");
  return 0;
}
