/// Serving-layer benchmark: what the immutable Plan / execute split and
/// the request batcher buy at request time.
///
/// Two comparisons, both with exact word counts from the simulator:
///  1. Batching — k narrow scoring requests served one kernel pass each
///     (width = the grid's minimum r multiple) vs the same k requests
///     coalesced into r-wide batched passes at the width_dispatch sweet
///     spot r = 32. Propagation words scale with the pass count, not the
///     total column count, so batching must never move more words.
///  2. Cross-call replication cache — the first SDDMM against a resident
///     plan gathers the stationary factor (cold words), the second rides
///     the cache (warm words must be ZERO), and the ratio is the whole
///     replication phase of every steady-state serving call.
///
/// Timing fields (*_seconds) are the deterministic machine-model
/// projections, excluded from the words gate like all timings. The
/// committed BENCH_serving.json is diffed by check_bench_words.py in CI;
/// this binary also self-gates (exit 1) if batching or caching loses.

#include "bench_common.hpp"
#include "dist/plan.hpp"
#include "dist/problem.hpp"
#include "dist/replication_cache.hpp"
#include "runtime/world.hpp"

using namespace dsk;
using namespace dsk::bench;

namespace {

std::uint64_t comm_words(const WorldStats& stats) {
  return stats.max_words(Phase::Replication) +
         stats.max_words(Phase::Propagation);
}

std::uint64_t comm_messages(const WorldStats& stats) {
  return stats.max_messages(Phase::Replication) +
         stats.max_messages(Phase::Propagation);
}

} // namespace

int main(int argc, char** argv) {
  const std::string out = out_path_from_args(argc, argv);
  print_header("Serving: batched passes and the cross-call "
               "replication cache");

  const Index n = 1024 * env_scale();
  const Index d = 8;
  const int p = 8;
  const Index batch_r = 32;
  const int requests = 32;
  const auto machine = MachineModel::cori_knl();

  JsonRecords records;
  bool ok = true;

  std::printf("n = %lld, nnz/row = %lld, p = %d, %d requests; words are "
              "per-rank maxima\n\n",
              static_cast<long long>(n), static_cast<long long>(d), p,
              requests);
  std::printf("%-18s %2s %7s %12s %12s %7s %10s %10s\n", "algorithm", "c",
              "narrow", "k*narrow", "batched", "ratio", "cold repl",
              "warm repl");

  struct Family {
    AlgorithmKind kind;
    int c;
    /// 2.5D-SparseRepl replicates sparsity-sized value lists, not dense
    /// factor blocks — the dense-block cache deliberately skips it.
    bool cacheable;
  };
  const Family families[] = {
      {AlgorithmKind::DenseShift15D, 2, true},
      {AlgorithmKind::SparseShift15D, 2, true},
      {AlgorithmKind::DenseRepl25D, 2, true},
      {AlgorithmKind::SparseRepl25D, 2, false},
  };

  for (const Family& fam : families) {
    Rng rng(4242);
    CooMatrix s = erdos_renyi_fixed_row(n, n, d, rng);
    const Index narrow_r = dims_requirement(fam.kind, p, fam.c).r_multiple;
    DenseMatrix a(s.rows(), batch_r), b(s.cols(), batch_r);
    a.fill_random(rng);
    b.fill_random(rng);
    const PaddedProblem padded = pad_problem(fam.kind, p, fam.c, s, a, b);

    DenseMatrix a_narrow(padded.s.rows(), narrow_r);
    DenseMatrix b_narrow(padded.s.cols(), narrow_r);
    for (Index i = 0; i < a_narrow.rows(); ++i) {
      for (Index j = 0; j < narrow_r; ++j) a_narrow(i, j) = padded.a(i, j);
    }

    const Plan plan_narrow =
        make_plan(fam.kind, p, fam.c, padded.s, narrow_r);
    const Plan plan_batch =
        make_plan(fam.kind, p, fam.c, padded.s, batch_r);
    SimWorld world(p);
    ExecuteOptions exec;
    exec.world = &world;

    // k requests, one narrow pass each.
    const auto one_narrow =
        plan_narrow.execute(Mode::SpMMB, padded.s, a_narrow, b_narrow,
                            exec);
    const std::uint64_t narrow_words = comm_words(one_narrow.stats);
    const std::uint64_t narrow_total =
        narrow_words * static_cast<std::uint64_t>(requests);

    // The same k requests coalesced into 32-wide batched passes.
    const auto one_batch =
        plan_batch.execute(Mode::SpMMB, padded.s, padded.a, padded.b,
                           exec);
    const auto passes = static_cast<std::uint64_t>(
        (requests + batch_r - 1) / batch_r);
    const std::uint64_t batched_total =
        comm_words(one_batch.stats) * passes;
    const double ratio =
        batched_total > 0
            ? static_cast<double>(narrow_total) /
                  static_cast<double>(batched_total)
            : 1.0;
    if (batched_total > narrow_total) ok = false;

    // Cross-call cache on the stationary-factor SDDMM.
    ReplicationCache cache(p);
    ExecuteOptions cached = exec;
    cached.cache = &cache;
    const auto cold = plan_batch.execute(Mode::SDDMM, padded.s, padded.a,
                                         padded.b, cached);
    const auto warm = plan_batch.execute(Mode::SDDMM, padded.s, padded.a,
                                         padded.b, cached);
    const std::uint64_t cold_repl =
        cold.stats.max_words(Phase::Replication);
    const std::uint64_t warm_repl =
        warm.stats.max_words(Phase::Replication);
    if (fam.cacheable && warm_repl != 0) ok = false;

    const std::uint64_t narrow_msgs =
        comm_messages(one_narrow.stats) *
        static_cast<std::uint64_t>(requests);
    const std::uint64_t batched_msgs =
        comm_messages(one_batch.stats) * passes;
    if (batched_msgs > narrow_msgs) ok = false;

    std::printf("%-18s %2d %7lld %12llu %12llu %6.2fx %10llu %10llu\n",
                to_string(fam.kind).c_str(), fam.c,
                static_cast<long long>(narrow_r),
                static_cast<unsigned long long>(narrow_total),
                static_cast<unsigned long long>(batched_total), ratio,
                static_cast<unsigned long long>(cold_repl),
                static_cast<unsigned long long>(warm_repl));

    records.add()
        .field("bench", "serving")
        .field("algorithm", to_string(fam.kind))
        .field("p", p)
        .field("c", fam.c)
        .field("n", static_cast<std::int64_t>(padded.s.rows()))
        .field("nnz", static_cast<std::int64_t>(padded.s.nnz()))
        .field("requests", requests)
        .field("narrow_r", static_cast<std::int64_t>(narrow_r))
        .field("batch_r", static_cast<std::int64_t>(batch_r))
        .field("narrow_words_total", narrow_total)
        .field("batched_words_total", batched_total)
        .field("narrow_messages_total", narrow_msgs)
        .field("batched_messages_total", batched_msgs)
        .field("batching_wins", batched_total <= narrow_total &&
                                        batched_msgs <= narrow_msgs
                                    ? 1
                                    : 0)
        .field("cold_replication_words", cold_repl)
        .field("warm_replication_words", warm_repl)
        .field("cache_warm_is_free",
               !fam.cacheable || warm_repl == 0 ? 1 : 0)
        .field("narrow_modeled_seconds",
               one_narrow.stats.modeled_kernel_seconds(machine) *
                   requests)
        .field("batched_modeled_seconds",
               one_batch.stats.modeled_kernel_seconds(machine) *
                   static_cast<double>(passes));
  }

  std::printf("\nbatched passes %s; warm cache replication words %s\n",
              ok ? "never move more words than narrow ones"
                 : "REGRESSED vs narrow passes",
              ok ? "are zero" : "are NONZERO");
  const int rc = finish_records(records, out);
  if (rc != 0) return rc;
  return ok ? 0 : 1;
}
